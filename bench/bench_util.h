// Shared helpers for the figure-reproduction benches: consistent headers,
// per-QoS result tables, and the all-to-all workload wiring used by most of
// the paper's experiments (§6.1: average load 0.8, burst load 1.4, Poisson
// arrivals within bursts).
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "runner/experiment.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace aeq::bench {

inline void print_header(const char* figure, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("==============================================================\n");
}

inline void print_footer() { std::printf("\n"); }

inline const char* qos_name(net::QoSLevel qos, std::size_t num_qos) {
  if (num_qos == 2) return qos == 0 ? "QoS_h" : "QoS_l";
  switch (qos) {
    case 0: return "QoS_h";
    case 1: return "QoS_m";
    default: return "QoS_l";
  }
}

// Attaches the paper's all-to-all workload to every host: per-host average
// byte rate = `load` * link rate split across priority classes by `mix`.
struct AllToAllSpec {
  double load = 0.8;            // mu, fraction of link rate per host
  double burst_load = 1.4;      // rho; burst_over_avg = rho / mu
  sim::Time burst_period = 100 * sim::kUsec;
  std::vector<double> mix = {0.6, 0.3, 0.1};  // PC/NC/BE byte shares
  // One distribution per class (same pointer allowed).
  std::vector<const workload::SizeDistribution*> sizes;
  std::vector<sim::Time> deadline_budget;  // optional, per class
};

inline void attach_all_to_all(runner::Experiment& experiment,
                              const AllToAllSpec& spec) {
  const auto& config = experiment.config();
  const double per_host_rate = spec.load * config.link_rate;
  for (std::size_t h = 0; h < config.num_hosts; ++h) {
    workload::GeneratorConfig gen;
    gen.burst_over_avg = spec.burst_load / spec.load;
    gen.burst_period = spec.burst_period;
    for (std::size_t c = 0; c < spec.mix.size(); ++c) {
      if (spec.mix[c] <= 0.0) continue;
      workload::ClassLoad load;
      load.priority = static_cast<rpc::Priority>(c);
      load.byte_rate = spec.mix[c] * per_host_rate;
      load.sizes = spec.sizes.size() == 1 ? spec.sizes[0] : spec.sizes.at(c);
      load.deadline_budget =
          spec.deadline_budget.empty() ? 0.0 : spec.deadline_budget.at(c);
      gen.classes.push_back(load);
    }
    experiment.add_generator(static_cast<net::HostId>(h), gen);
  }
}

// Prints the per-QoS RNL summary table (mean / p99 / p99.9, completions,
// admitted share).
inline void print_rnl_table(const rpc::RpcMetrics& metrics,
                            std::size_t num_qos) {
  std::printf("%-8s %-12s %-12s %-14s %-12s %-12s %-12s\n", "QoS",
              "mean(us)", "p99(us)", "p99.9(us)", "completed", "downgr.",
              "share(%)");
  for (std::size_t q = 0; q < num_qos; ++q) {
    const auto qos = static_cast<net::QoSLevel>(q);
    const auto& rnl = metrics.rnl_by_run_qos(qos);
    std::printf("%-8s %-12.1f %-12.1f %-14.1f %-12llu %-12llu %-12.1f\n",
                qos_name(qos, num_qos), rnl.mean() / sim::kUsec,
                rnl.p99() / sim::kUsec, rnl.p999() / sim::kUsec,
                static_cast<unsigned long long>(metrics.completed(qos)),
                static_cast<unsigned long long>(metrics.downgraded(qos)),
                100.0 * metrics.admitted_share(qos));
  }
}

}  // namespace aeq::bench
