// Figure 20: size-normalized SLOs with a non-uniform size distribution.
// Half the hosts issue 32KB RPCs, the other half 64KB, on the 33-node
// all-to-all workload. Because Algorithm 1 normalizes the latency target
// per MTU (and scales MD with RPC size), both size groups should meet their
// (proportionally larger) absolute targets under Aequitas.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "stats/percentile.h"

namespace {

using namespace aeq;

struct GroupStats {
  stats::PercentileTracker rnl[2][3];  // [size group][qos]
};

void run(bool with_aequitas, GroupStats& stats_out, double* shares) {
  runner::ExperimentConfig config;
  config.num_hosts = 33;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = with_aequitas;
  // Normalized SLO: 25us per 8 MTUs => 32KB gets 25us, 64KB gets 50us.
  config.slo = rpc::SloConfig::make(
      {25.0 / 8 * sim::kUsec, 50.0 / 8 * sim::kUsec, 0.0}, 99.9);
  // Favor SLO-compliance over stability (§6.6): larger messages fatten the
  // tail of the latency distribution, so the default alpha/beta balance
  // (which equalizes the average miss rate) would settle above the p99.9
  // target.
  config.alpha = 0.002;
  config.beta_per_mtu = 0.05;
  runner::Experiment experiment(config);
  const auto* small = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  const auto* large = experiment.own(
      std::make_unique<workload::FixedSize>(64 * sim::kKiB));
  for (std::size_t h = 0; h < 33; ++h) {
    const auto* sizes = h % 2 == 0 ? small : large;
    workload::GeneratorConfig gen;
    gen.burst_over_avg = 1.4 / 0.8;
    const double rate = 0.8 * sim::gbps(100);
    gen.classes = {{rpc::Priority::kPC, 0.6 * rate, sizes, 0.0},
                   {rpc::Priority::kNC, 0.3 * rate, sizes, 0.0},
                   {rpc::Priority::kBE, 0.1 * rate, sizes, 0.0}};
    experiment.add_generator(static_cast<net::HostId>(h), gen);
    experiment.stack(static_cast<net::HostId>(h))
        .set_completion_listener([&stats_out, h](const rpc::RpcRecord& r) {
          if (r.issued < 15 * sim::kMsec) return;
          stats_out.rnl[h % 2][r.qos_run].add(r.rnl);
        });
  }
  experiment.run(15 * sim::kMsec, 22 * sim::kMsec);
  for (net::QoSLevel q = 0; q < 3; ++q) {
    shares[q] = experiment.metrics().admitted_share(q);
  }
}

}  // namespace

int main() {
  bench::print_header("Figure 20",
                      "Size-normalized SLOs: half 32KB / half 64KB "
                      "channels, SLO 25us per 8 MTUs (p99.9)");
  auto baseline = std::make_unique<GroupStats>();
  auto aequitas = std::make_unique<GroupStats>();
  double shares_base[3], shares_aeq[3];
  run(false, *baseline, shares_base);
  run(true, *aequitas, shares_aeq);

  std::printf("%-22s %-10s %-10s %-10s\n", "group", "QoS_h", "QoS_m",
              "QoS_l");
  struct Row {
    const char* label;
    GroupStats* stats;
    int group;
  };
  const Row rows[] = {
      {"32KB w/o Aequitas", baseline.get(), 0},
      {"32KB w/  Aequitas", aequitas.get(), 0},
      {"64KB w/o Aequitas", baseline.get(), 1},
      {"64KB w/  Aequitas", aequitas.get(), 1},
  };
  for (const Row& row : rows) {
    std::printf("%-22s %-10.1f %-10.1f %-10.1f\n", row.label,
                row.stats->rnl[row.group][0].p999() / sim::kUsec,
                row.stats->rnl[row.group][1].p999() / sim::kUsec,
                row.stats->rnl[row.group][2].p999() / sim::kUsec);
  }
  std::printf("\nabsolute targets: 32KB 25us(h)/50us(m); "
              "64KB 50us(h)/100us(m)\n");
  std::printf("admitted mix w/o: %.0f/%.0f/%.0f%%  w/: %.0f/%.0f/%.0f%%\n",
              100 * shares_base[0], 100 * shares_base[1],
              100 * shares_base[2], 100 * shares_aeq[0],
              100 * shares_aeq[1], 100 * shares_aeq[2]);
  bench::print_footer();
  return 0;
}
