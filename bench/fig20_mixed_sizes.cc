// Figure 20: size-normalized SLOs with a non-uniform size distribution.
// Half the hosts issue 32KB RPCs, the other half 64KB, on the 33-node
// all-to-all workload. Because Algorithm 1 normalizes the latency target
// per MTU (and scales MD with RPC size), both size groups should meet their
// (proportionally larger) absolute targets under Aequitas.
#include <cstdio>
#include <memory>
#include <utility>

#include "bench/bench_util.h"
#include "stats/percentile.h"

namespace {

using namespace aeq;

struct GroupStats {
  stats::PercentileTracker rnl[2][3];  // [size group][qos]
  double shares[3] = {0.0, 0.0, 0.0};
};

GroupStats run(bool with_aequitas, std::uint64_t seed,
               const bench::TraceRequest& trace, int point) {
  runner::ExperimentConfig config;
  config.num_hosts = 33;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = with_aequitas;
  config.seed = seed;
  // Normalized SLO: 25us per 8 MTUs => 32KB gets 25us, 64KB gets 50us.
  config.slo = rpc::SloConfig::make(
      {25.0 / 8 * sim::kUsec, 50.0 / 8 * sim::kUsec, 0.0}, 99.9);
  // Favor SLO-compliance over stability (§6.6): larger messages fatten the
  // tail of the latency distribution, so the default alpha/beta balance
  // (which equalizes the average miss rate) would settle above the p99.9
  // target.
  config.admission.aequitas.alpha = 0.002;
  config.admission.aequitas.beta_per_mtu = 0.05;
  runner::Experiment experiment(config);
  trace.apply(experiment, point);
  const auto* small = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  const auto* large = experiment.own(
      std::make_unique<workload::FixedSize>(64 * sim::kKiB));
  GroupStats stats_out;  // captured by ref; callbacks stop before return
  for (std::size_t h = 0; h < 33; ++h) {
    const auto* sizes = h % 2 == 0 ? small : large;
    workload::GeneratorConfig gen;
    gen.burst_over_avg = 1.4 / 0.8;
    const double rate = 0.8 * sim::gbps(100);
    gen.classes = {{rpc::Priority::kPC, 0.6 * rate, sizes, 0.0},
                   {rpc::Priority::kNC, 0.3 * rate, sizes, 0.0},
                   {rpc::Priority::kBE, 0.1 * rate, sizes, 0.0}};
    experiment.add_generator(static_cast<net::HostId>(h), gen);
    experiment.stack(static_cast<net::HostId>(h))
        .set_completion_listener([&stats_out, h](const rpc::RpcRecord& r) {
          if (r.issued < 15 * sim::kMsec) return;
          stats_out.rnl[h % 2][r.qos_run].add(r.rnl);
        });
  }
  experiment.run(15 * sim::kMsec, 22 * sim::kMsec);
  for (net::QoSLevel q = 0; q < 3; ++q) {
    stats_out.shares[q] = experiment.metrics().admitted_share(q);
  }
  return stats_out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 20",
                      "Size-normalized SLOs: half 32KB / half 64KB "
                      "channels, SLO 25us per 8 MTUs (p99.9)");
  const runner::SweepRunner seeds(args.sweep);
  auto results = runner::parallel_points(
      2, args.sweep.jobs, [&seeds, &args](std::size_t index) {
        return run(index == 1, seeds.point_seed(index), args.trace,
                   static_cast<int>(index));
      });
  GroupStats& baseline = results[0];
  GroupStats& aequitas = results[1];

  stats::Table table({{"group", 22},
                      {"QoS_h", 10, 1},
                      {"QoS_m", 10, 1},
                      {"QoS_l", 10, 1}});
  struct Row {
    const char* label;
    GroupStats* stats;
    int group;
  };
  const Row rows[] = {
      {"32KB w/o Aequitas", &baseline, 0},
      {"32KB w/  Aequitas", &aequitas, 0},
      {"64KB w/o Aequitas", &baseline, 1},
      {"64KB w/  Aequitas", &aequitas, 1},
  };
  for (const Row& row : rows) {
    table.add_row({row.label,
                   row.stats->rnl[row.group][0].p999() / sim::kUsec,
                   row.stats->rnl[row.group][1].p999() / sim::kUsec,
                   row.stats->rnl[row.group][2].p999() / sim::kUsec});
  }
  bench::emit(table, args);
  std::printf("\nabsolute targets: 32KB 25us(h)/50us(m); "
              "64KB 50us(h)/100us(m)\n");
  std::printf("admitted mix w/o: %.0f/%.0f/%.0f%%  w/: %.0f/%.0f/%.0f%%\n",
              100 * baseline.shares[0], 100 * baseline.shares[1],
              100 * baseline.shares[2], 100 * aequitas.shares[0],
              100 * aequitas.shares[1], 100 * aequitas.shares[2]);
  bench::print_footer();
  return 0;
}
