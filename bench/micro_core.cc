// Micro-benchmarks (google-benchmark) for the hot data structures: event
// queue, queue disciplines, Swift, the Aequitas admission decision, and
// whole-simulator packet throughput.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/aequitas.h"
#include "net/dwrr.h"
#include "sim/calendar_queue.h"
#include "net/pfabric_queue.h"
#include "net/spq.h"
#include "net/wfq.h"
#include "sim/event_queue.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "transport/host_stack.h"
#include "transport/swift.h"

namespace {

using namespace aeq;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue queue;
  sim::Rng rng(1);
  double t = 0.0;
  int dummy = 0;
  for (int i = 0; i < 1000; ++i) {
    queue.schedule(t + rng.uniform(), [&dummy] { ++dummy; });
  }
  for (auto _ : state) {
    auto popped = queue.pop();
    t = popped.time;
    popped.handler();
    queue.schedule(t + rng.uniform(), [&dummy] { ++dummy; });
  }
  benchmark::DoNotOptimize(dummy);
  state.SetItemsProcessed(state.iterations());  // items/s == events/sec
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_CalendarQueueScheduleAndPop(benchmark::State& state) {
  sim::CalendarQueue queue;
  sim::Rng rng(1);
  double t = 0.0;
  int dummy = 0;
  for (int i = 0; i < 1000; ++i) {
    queue.schedule(t + rng.uniform(0, 1e-3), [&dummy] { ++dummy; });
  }
  for (auto _ : state) {
    auto popped = queue.pop();
    t = popped.time;
    popped.handler();
    queue.schedule(t + rng.uniform(0, 1e-3), [&dummy] { ++dummy; });
  }
  benchmark::DoNotOptimize(dummy);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalendarQueueScheduleAndPop);

// Both backends through the EventScheduler interface, exactly as Simulator
// drives them (virtual dispatch included), on the dense short-horizon event
// profile a packet simulation produces. items/s is events/sec.
void BM_SchedulerScheduleAndPop(benchmark::State& state) {
  const auto backend = static_cast<sim::SchedulerBackend>(state.range(0));
  state.SetLabel(sim::backend_name(backend));
  auto queue = sim::make_scheduler(backend);
  sim::Rng rng(1);
  double t = 0.0;
  int dummy = 0;
  for (int i = 0; i < 1000; ++i) {
    queue->schedule(t + rng.exponential(2e-6), [&dummy] { ++dummy; });
  }
  for (auto _ : state) {
    auto popped = queue->pop();
    t = popped.time;
    popped.handler();
    queue->schedule(t + rng.exponential(2e-6), [&dummy] { ++dummy; });
  }
  benchmark::DoNotOptimize(dummy);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerScheduleAndPop)
    ->Arg(static_cast<int>(aeq::sim::SchedulerBackend::kHeap))
    ->Arg(static_cast<int>(aeq::sim::SchedulerBackend::kCalendar));

// Timer-heavy profile: most scheduled events are cancelled before firing
// (retransmission timers, deadline guards). Exercises the generation-stamped
// tombstone path of both backends.
void BM_SchedulerScheduleCancelPop(benchmark::State& state) {
  const auto backend = static_cast<sim::SchedulerBackend>(state.range(0));
  state.SetLabel(sim::backend_name(backend));
  auto queue = sim::make_scheduler(backend);
  sim::Rng rng(1);
  double t = 0.0;
  int dummy = 0;
  for (auto _ : state) {
    const auto id =
        queue->schedule(t + rng.exponential(5e-6), [&dummy] { ++dummy; });
    queue->schedule(t + rng.exponential(2e-6), [&dummy] { ++dummy; });
    queue->cancel(id);  // the "timer" never fires
    auto popped = queue->pop();
    t = popped.time;
    popped.handler();
  }
  while (!queue->empty()) queue->pop();
  benchmark::DoNotOptimize(dummy);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerScheduleCancelPop)
    ->Arg(static_cast<int>(aeq::sim::SchedulerBackend::kHeap))
    ->Arg(static_cast<int>(aeq::sim::SchedulerBackend::kCalendar));

template <typename Queue>
net::Packet make_packet(std::uint8_t qos, double priority = 0.0) {
  net::Packet p;
  p.qos = qos;
  p.size_bytes = 4096;
  p.cold.priority = priority;
  return p;
}

void BM_WfqEnqueueDequeue(benchmark::State& state) {
  net::WfqQueue queue({8.0, 4.0, 1.0});
  sim::Rng rng(2);
  for (int i = 0; i < 64; ++i) {
    queue.enqueue(make_packet<net::WfqQueue>(
        static_cast<std::uint8_t>(rng.index(3))));
  }
  for (auto _ : state) {
    queue.enqueue(make_packet<net::WfqQueue>(
        static_cast<std::uint8_t>(rng.index(3))));
    benchmark::DoNotOptimize(queue.dequeue());
  }
}
BENCHMARK(BM_WfqEnqueueDequeue);

void BM_DwrrEnqueueDequeue(benchmark::State& state) {
  net::DwrrQueue queue({8.0, 4.0, 1.0});
  sim::Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    queue.enqueue(make_packet<net::DwrrQueue>(
        static_cast<std::uint8_t>(rng.index(3))));
  }
  for (auto _ : state) {
    queue.enqueue(make_packet<net::DwrrQueue>(
        static_cast<std::uint8_t>(rng.index(3))));
    benchmark::DoNotOptimize(queue.dequeue());
  }
}
BENCHMARK(BM_DwrrEnqueueDequeue);

void BM_SpqEnqueueDequeue(benchmark::State& state) {
  net::SpqQueue queue(3);
  sim::Rng rng(4);
  for (int i = 0; i < 64; ++i) {
    queue.enqueue(make_packet<net::SpqQueue>(
        static_cast<std::uint8_t>(rng.index(3))));
  }
  for (auto _ : state) {
    queue.enqueue(make_packet<net::SpqQueue>(
        static_cast<std::uint8_t>(rng.index(3))));
    benchmark::DoNotOptimize(queue.dequeue());
  }
}
BENCHMARK(BM_SpqEnqueueDequeue);

void BM_PfabricEnqueueDequeue(benchmark::State& state) {
  net::PfabricQueue queue(64 * 4096);
  sim::Rng rng(5);
  for (int i = 0; i < 32; ++i) {
    queue.enqueue(
        make_packet<net::PfabricQueue>(0, rng.uniform(0, 1e6)));
  }
  for (auto _ : state) {
    queue.enqueue(
        make_packet<net::PfabricQueue>(0, rng.uniform(0, 1e6)));
    benchmark::DoNotOptimize(queue.dequeue());
  }
}
BENCHMARK(BM_PfabricEnqueueDequeue);

void BM_SwiftOnAck(benchmark::State& state) {
  transport::SwiftConfig config;
  transport::SwiftCC cc(config);
  sim::Rng rng(6);
  double now = 0.0;
  for (auto _ : state) {
    now += 1e-6;
    cc.on_ack(now, rng.uniform(5e-6, 20e-6), 1.0, false);
  }
  benchmark::DoNotOptimize(cc.cwnd_packets());
}
BENCHMARK(BM_SwiftOnAck);

void BM_AequitasAdmitDecision(benchmark::State& state) {
  core::AequitasConfig config;
  config.slo = rpc::SloConfig::make(
      {15 * sim::kUsec, 25 * sim::kUsec, 0.0}, 99.9);
  core::AequitasController controller(config, sim::Rng(7));
  sim::Rng rng(8);
  double now = 0.0;
  for (auto _ : state) {
    now += 1e-6;
    const auto dst = static_cast<net::HostId>(rng.index(32));
    benchmark::DoNotOptimize(controller.admit(now, 0, dst, 0, 4096));
    controller.on_completion(now, 0, dst, 0, 0,
                             rng.uniform(5e-6, 30e-6), 8);
  }
}
BENCHMARK(BM_AequitasAdmitDecision);

// Whole-simulator throughput: 3-node star at line rate; reports simulated
// packets per wall second.
void BM_EndToEndPacketThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator s;
    topo::StarConfig config;
    config.num_hosts = 3;
    config.host_queue.weights = {4.0, 1.0};
    config.switch_queue.weights = {4.0, 1.0};
    topo::Network network = topo::build_star(s, config);
    std::vector<std::unique_ptr<transport::HostStack>> stacks;
    for (std::size_t i = 0; i < 3; ++i) {
      stacks.push_back(std::make_unique<transport::HostStack>(
          s, network.host(static_cast<net::HostId>(i)), 3,
          transport::TransportConfig{}, [] {
            return std::make_unique<transport::SwiftCC>(
                transport::SwiftConfig{});
          }));
    }
    int done = 0;
    for (int m = 0; m < 100; ++m) {
      transport::SendRequest request;
      request.dst = 2;
      request.qos = 0;
      request.bytes = 64 * 1024;
      request.rpc_id = static_cast<std::uint64_t>(m) + 1;
      stacks[m % 2]->send_message(
          request, [&done](const transport::MessageCompletion&) { ++done; });
    }
    state.ResumeTiming();
    s.run();
    benchmark::DoNotOptimize(done);
    state.counters["events"] = static_cast<double>(s.events_processed());
  }
}
BENCHMARK(BM_EndToEndPacketThroughput);

}  // namespace

BENCHMARK_MAIN();
