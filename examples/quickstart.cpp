// Quickstart: the smallest end-to-end Aequitas run.
//
// Two clients overload a third host's 100G downlink with 32KB
// performance-critical WRITE RPCs (70% of load requested on QoS_h). Aequitas
// at the senders measures per-RPC network latency (RNL) against a 15us SLO
// and downgrades the excess to the scavenger class, so admitted QoS_h
// traffic stays SLO-compliant.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "runner/experiment.h"

int main() {
  using namespace aeq;

  // 1) Configure a 3-node star (2 clients -> 1 server) with 2 QoS levels
  //    served by 4:1 WFQ, Swift congestion control, and Aequitas admission.
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  config.enable_aequitas = true;

  // SLO: 15us per 8-MTU (32KB) RPC at the 99.9th percentile, i.e. 15/8 us
  // per MTU. The lowest QoS is a scavenger class (no SLO).
  const double kSloSeconds = 15 * sim::kUsec;
  const std::uint64_t kRpcBytes = 32 * sim::kKiB;
  const double size_mtus = static_cast<double>(
      rpc::size_in_mtus(kRpcBytes, config.transport.mtu_bytes));
  config.slo = rpc::SloConfig::make({kSloSeconds / size_mtus, 0.0}, 99.9);

  runner::Experiment experiment(config);

  // 2) Attach workloads: each client offers line rate toward host 2, with
  //    70% requested as performance-critical (QoS_h) and 30% best-effort.
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(kRpcBytes));
  for (net::HostId client : {0, 1}) {
    workload::GeneratorConfig gen;
    gen.classes = {
        {rpc::Priority::kPC, 0.7 * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kBE, 0.3 * sim::gbps(100), sizes, 0.0},
    };
    experiment.add_generator(client, gen, workload::fixed_destination(2));
  }

  // 3) Run 60ms of simulated time (10ms warmup) and report.
  experiment.run(10 * sim::kMsec, 50 * sim::kMsec);

  const rpc::RpcMetrics& metrics = experiment.metrics();
  std::printf("Aequitas quickstart (3-node, 100G, SLO 15us @ p99.9)\n\n");
  std::printf("%-8s %-14s %-14s %-14s %-12s\n", "QoS", "p50 RNL(us)",
              "p99.9 RNL(us)", "completed", "share(%)");
  const char* names[] = {"QoS_h", "QoS_l"};
  for (net::QoSLevel q = 0; q < 2; ++q) {
    const auto& rnl = metrics.rnl_by_run_qos(q);
    std::printf("%-8s %-14.1f %-14.1f %-14llu %-12.1f\n", names[q],
                rnl.p50() / sim::kUsec, rnl.p999() / sim::kUsec,
                static_cast<unsigned long long>(metrics.completed(q)),
                100.0 * metrics.admitted_share(q));
  }
  std::printf(
      "\nDowngraded PC RPCs: %llu (admit probability adapted to keep "
      "admitted QoS_h within SLO)\n",
      static_cast<unsigned long long>(metrics.downgraded(net::kQoSHigh)));
  std::printf("p99.9 QoS_h RNL vs SLO: %.1fus vs %.1fus\n",
              metrics.rnl_by_run_qos(net::kQoSHigh).p999() / sim::kUsec,
              kSloSeconds / sim::kUsec);
  return 0;
}
