// Multi-tenant scenario: Aequitas plus the centralized quota server
// (paper §5.2 future work).
//
// Aequitas guarantees *latency* for admitted traffic but shares the
// admissible QoS_h capacity equally across channels; a paying "gold"
// tenant wants 3x the admitted share of a "bronze" tenant. The quota
// server allocates the per-QoS byte budget by tenant weight (max-min with
// demand caps) and each tenant's controller enforces it with a token
// bucket on top of the usual AIMD admission.
//
// Build & run:  ./build/examples/multi_tenant
#include <cstdio>
#include <memory>

#include "core/quota.h"
#include "runner/experiment.h"

int main() {
  using namespace aeq;

  runner::ExperimentConfig config;
  config.num_hosts = 3;  // host 0 = gold, host 1 = bronze, host 2 = server
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  const double size_mtus = 8.0;
  config.slo =
      rpc::SloConfig::make({20 * sim::kUsec / size_mtus, 0.0}, 99.9);
  const rpc::SloConfig slo = config.slo;

  // Shared quota server, created lazily with the experiment's simulator.
  auto server = std::make_shared<std::shared_ptr<core::QuotaServer>>();
  config.admission_factory =
      [server, slo](sim::Simulator& simulator, net::HostId host,
                    sim::Rng rng) -> std::unique_ptr<rpc::AdmissionController> {
    if (!*server) {
      core::QuotaServerConfig sc;
      sc.qos_budget_bytes_per_sec = {0.20 * sim::gbps(100), sim::gbps(100)};
      *server = std::make_shared<core::QuotaServer>(simulator, sc);
    }
    core::AequitasConfig aeq;
    aeq.slo = slo;
    const double weight = host == 0 ? 3.0 : 1.0;  // gold : bronze
    const auto tenant = (*server)->register_tenant(weight);
    struct Tenant final : rpc::AdmissionController {
      std::shared_ptr<core::QuotaServer> keepalive;
      std::unique_ptr<core::QuotaController> inner;
      rpc::AdmissionDecision admit(sim::Time now, net::HostId src,
                                   net::HostId dst, net::QoSLevel qos,
                                   std::uint64_t bytes) override {
        return inner->admit(now, src, dst, qos, bytes);
      }
      void on_completion(sim::Time now, net::HostId src, net::HostId dst,
                         net::QoSLevel qos_requested, net::QoSLevel qos_run,
                         sim::Time rnl, std::uint64_t mtus) override {
        inner->on_completion(now, src, dst, qos_requested, qos_run, rnl,
                             mtus);
      }
    };
    auto controller = std::make_unique<Tenant>();
    controller->keepalive = *server;
    controller->inner = std::make_unique<core::QuotaController>(
        simulator, **server, tenant,
        std::make_unique<core::AequitasController>(aeq, rng),
        core::QuotaControllerConfig{});
    return controller;
  };
  runner::Experiment experiment(config);

  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  double admitted_bytes[2] = {0, 0};
  for (net::HostId tenant : {0, 1}) {
    workload::GeneratorConfig gen;
    gen.classes = {
        {rpc::Priority::kPC, 0.8 * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kBE, 0.2 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(tenant, gen, workload::fixed_destination(2));
    experiment.stack(tenant).set_completion_listener(
        [&admitted_bytes, tenant](const rpc::RpcRecord& r) {
          if (r.qos_run == net::kQoSHigh && !r.terminated &&
              r.issued > 15 * sim::kMsec) {
            admitted_bytes[tenant] += static_cast<double>(r.bytes);
          }
        });
  }
  experiment.run(15 * sim::kMsec, 30 * sim::kMsec);

  const double window = 30 * sim::kMsec;
  std::printf("Multi-tenant quota over Aequitas (gold weight 3, bronze 1; "
              "QoS_h budget 20 Gbps)\n\n");
  std::printf("gold   admitted QoS_h: %5.1f Gbps\n",
              admitted_bytes[0] * 8 / window / 1e9);
  std::printf("bronze admitted QoS_h: %5.1f Gbps\n",
              admitted_bytes[1] * 8 / window / 1e9);
  std::printf("QoS_h p99.9 RNL: %.1fus (SLO 20us)\n",
              experiment.metrics().rnl_by_run_qos(0).p999() / sim::kUsec);
  return 0;
}
