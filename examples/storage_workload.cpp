// Disaggregated-storage scenario (paper §2.1): a cluster of clients talking
// to storage servers with three RPC classes —
//   PC: small random READs and metadata ops (tail-latency SLO),
//   NC: large sequential READs (looser SLO),
//   BE: backup/scan traffic (scavenger).
// The example shows the full Aequitas API surface: per-QoS SLO targets,
// production-shaped size distributions, the downgrade notification an
// application receives, and how to read per-class compliance.
//
// Build & run:  ./build/examples/storage_workload
#include <cstdio>

#include "runner/experiment.h"

int main() {
  using namespace aeq;

  runner::ExperimentConfig config;
  config.num_hosts = 16;  // 12 clients + 4 storage servers
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = true;
  // Normalized SLOs: 6us per MTU for PC, 18us per MTU for NC, at p99.9.
  config.slo = rpc::SloConfig::make(
      {6 * sim::kUsec, 18 * sim::kUsec, 0.0}, 99.9);
  // Favor SLO-compliance (§6.6): heavy-tailed sizes at low per-channel
  // rates need a stronger decrease to hold the tail.
  config.alpha = 0.003;
  config.beta_per_mtu = 0.03;
  runner::Experiment experiment(config);

  const auto* pc_sizes = experiment.own(
      workload::production_size_dist(rpc::Priority::kPC, /*write=*/false));
  const auto* nc_sizes = experiment.own(
      workload::production_size_dist(rpc::Priority::kNC, false));
  const auto* be_sizes = experiment.own(
      workload::production_size_dist(rpc::Priority::kBE, false));

  // Clients 0..11 issue storage RPCs to servers 12..15 (4:1 fan-in per
  // server at peak). Bursty arrivals (rho/mu = 1.75).
  for (net::HostId client = 0; client < 12; ++client) {
    workload::GeneratorConfig gen;
    gen.burst_over_avg = 1.75;
    const double rate = 0.24 * sim::gbps(100);  // ~0.72 load per server
    gen.classes = {{rpc::Priority::kPC, 0.45 * rate, pc_sizes, 0.0},
                   {rpc::Priority::kNC, 0.35 * rate, nc_sizes, 0.0},
                   {rpc::Priority::kBE, 0.20 * rate, be_sizes, 0.0}};
    experiment.add_generator(
        client, gen, [](sim::Rng& rng) {
          return static_cast<net::HostId>(12 + rng.index(4));
        });
  }

  // Application-side downgrade handling: count notifications per client —
  // a real application would e.g. reduce its optional PC traffic (§5.1).
  std::uint64_t downgrade_notifications = 0;
  for (net::HostId client = 0; client < 12; ++client) {
    experiment.stack(client).set_completion_listener(
        [&downgrade_notifications](const rpc::RpcRecord& record) {
          if (record.downgraded) ++downgrade_notifications;
        });
  }

  experiment.run(10 * sim::kMsec, 40 * sim::kMsec);

  const auto& metrics = experiment.metrics();
  std::printf("Storage workload: 12 clients -> 4 servers, Aequitas on\n\n");
  std::printf("%-22s %-12s %-12s %-12s\n", "class", "p99.9/MTU(us)",
              "meet SLO(%)", "share(%)");
  const char* names[] = {"PC (random reads)", "NC (seq reads)",
                         "BE (backups)"};
  for (net::QoSLevel q = 0; q < 3; ++q) {
    std::printf("%-22s %-12.2f %-12.1f %-12.1f\n", names[q],
                metrics.rnl_per_mtu_by_run_qos(q).p999() / sim::kUsec,
                100 * metrics.slo_met_fraction(q),
                100 * metrics.admitted_share(q));
  }
  std::printf("\nSLO targets: PC 6us/MTU, NC 18us/MTU (p99.9); BE is the "
              "scavenger class.\n");
  std::printf("Downgrade notifications delivered to applications: %llu\n",
              static_cast<unsigned long long>(downgrade_notifications));
  return 0;
}
