// Operator tooling walkthrough (paper §4 and §6.1): before deploying SLOs,
// an operator uses the analysis library to understand the WFQ admissible
// region of their fabric — how much QoS_h traffic can be carried at a given
// delay bound, where priority inversion starts, and how WFQ weights and
// burstiness move those boundaries.
//
// Build & run:  ./build/examples/admissible_region
#include <cstdio>

#include "analysis/admissible.h"
#include "analysis/fluid.h"
#include "analysis/wfq_delay.h"

int main() {
  using namespace aeq::analysis;

  std::printf("WFQ admissible-region explorer\n");
  std::printf("fabric model: mu=0.8 average load, burst rho, weights "
              "phi:1 (2 QoS) or 8:4:1 (3 QoS)\n\n");

  // 1) How strict an SLO can we offer at a desired QoS_h share?
  std::printf("(1) SLO vs admissible QoS_h share (phi=4, rho=1.4):\n");
  std::printf("    %-28s %-20s\n", "normalized delay SLO", "max share(%)");
  TwoQosParams params{.phi = 4.0, .mu = 0.8, .rho = 1.4};
  for (double slo : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    std::printf("    %-28.2f %-20.1f\n", slo,
                100 * max_share_within_slo(params, slo));
  }

  // 2) Where does priority inversion start, and how do weights move it?
  std::printf("\n(2) priority-inversion boundary vs QoS_h weight "
              "(rho=1.4):\n");
  std::printf("    %-10s %-24s\n", "phi", "inversion at share(%)");
  for (double phi : {2.0, 4.0, 8.0, 16.0, 50.0}) {
    TwoQosParams p{.phi = phi, .mu = 0.8, .rho = 1.4};
    std::printf("    %-10.0f %-24.1f\n", phi,
                100 * max_admissible_share(p));
  }

  // 3) Burstiness shrinks the guaranteed-admissible share (Lemma of §5.2).
  std::printf("\n(3) guaranteed admitted share vs burstiness "
              "(weight share 8/13):\n");
  std::printf("    %-10s %-24s\n", "rho", "guaranteed share(%)");
  for (double rho : {1.2, 1.4, 1.8, 2.2, 3.0}) {
    std::printf("    %-10.1f %-24.1f\n", rho,
                100 * guaranteed_admitted_share(8.0 / 13.0, 0.8, rho));
  }

  // 4) Full 3-class profile at one operating point, via the fluid model.
  std::printf("\n(4) 3-class delay profile at mix 30/45/25, weights 8:4:1, "
              "rho=1.4:\n");
  FluidConfig config;
  config.weights = {8.0, 4.0, 1.0};
  config.shares = {0.30, 0.45, 0.25};
  config.mu = 0.8;
  config.rho = 1.4;
  const FluidResult result = simulate_fluid(config);
  const char* names[] = {"QoS_h", "QoS_m", "QoS_l"};
  for (int i = 0; i < 3; ++i) {
    std::printf("    %-8s worst-case delay %.4f (normalized)\n", names[i],
                result.delay[i]);
  }
  std::printf("    admissible (no inversion): %s\n",
              is_admissible(config) ? "yes" : "no");
  std::printf("\nPick the SLO from (1), then Aequitas enforces the "
              "corresponding share at runtime.\n");
  return 0;
}
