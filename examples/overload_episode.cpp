// Incident-response scenario (paper Figure 3): a production-style overload
// episode where background analytics traffic surges to several times the
// provisioned capacity of a few victim hosts, and the operator wants the
// performance-critical class to ride through it.
//
// The example runs the same episode twice — without and with Aequitas —
// and prints a timeline of the PC class's p99 RNL.
//
// Build & run:  ./build/examples/overload_episode
#include <cstdio>
#include <map>
#include <memory>

#include "runner/experiment.h"
#include "stats/percentile.h"

namespace {

using namespace aeq;

std::map<int, stats::PercentileTracker> run_episode(bool with_aequitas) {
  runner::ExperimentConfig config;
  config.num_hosts = 10;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = with_aequitas;
  config.slo = rpc::SloConfig::make(
      {3 * sim::kUsec, 8 * sim::kUsec, 0.0}, 99.9);
  runner::Experiment experiment(config);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));

  std::map<int, stats::PercentileTracker> pc_timeline;
  for (net::HostId h = 0; h < 10; ++h) {
    experiment.stack(h).set_completion_listener(
        [&pc_timeline](const rpc::RpcRecord& r) {
          if (r.priority == rpc::Priority::kPC) {
            pc_timeline[static_cast<int>(r.completed / sim::kMsec)].add(
                r.rnl);
          }
        });
  }

  // Steady state: light mixed load everywhere.
  for (net::HostId h = 0; h < 10; ++h) {
    workload::GeneratorConfig gen;
    const double rate = 0.30 * sim::gbps(100);
    gen.classes = {{rpc::Priority::kPC, 0.4 * rate, sizes, 0.0},
                   {rpc::Priority::kNC, 0.3 * rate, sizes, 0.0},
                   {rpc::Priority::kBE, 0.3 * rate, sizes, 0.0}};
    experiment.add_generator(h, gen);
  }
  // The incident: hosts 2..9 dump BE traffic on hosts 0 and 1 from 8ms on.
  for (net::HostId h = 2; h < 10; ++h) {
    workload::GeneratorConfig gen;
    gen.window_start = 8 * sim::kMsec;
    gen.window_stop = 28 * sim::kMsec;
    gen.classes = {{rpc::Priority::kBE, 0.9 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(
        h, gen, workload::fixed_destination(h % 2));
  }
  experiment.run(0.0, 36 * sim::kMsec);
  return pc_timeline;
}

}  // namespace

int main() {
  std::printf("Overload episode: BE surge into 2 victims during "
              "[8ms, 28ms)\n\n");
  auto base = run_episode(false);
  auto with_aeq = run_episode(true);
  std::printf("%-8s %-22s %-22s\n", "t(ms)", "PC p99 w/o Aequitas(us)",
              "PC p99 w/ Aequitas(us)");
  for (int ms = 2; ms <= 34; ms += 2) {
    std::printf("%-8d %-22.1f %-22.1f\n", ms,
                base.count(ms) ? base[ms].p99() / aeq::sim::kUsec : 0.0,
                with_aeq.count(ms) ? with_aeq[ms].p99() / aeq::sim::kUsec
                                   : 0.0);
  }
  std::printf("\nAequitas downgrades the surge (and excess PC) so admitted "
              "PC traffic keeps its tail through the incident.\n");
  return 0;
}
