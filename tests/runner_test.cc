// Tests for the experiment harnesses themselves: sampler scheduling,
// utilization accounting, ownership helpers, generator windows, and
// contract violations (death tests on AEQ_ASSERT).
#include <gtest/gtest.h>

#include <memory>

#include "net/wfq.h"
#include "runner/experiment.h"
#include "runner/protocol_experiment.h"

namespace aeq {
namespace {

runner::ExperimentConfig small_config() {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  config.enable_aequitas = false;
  config.slo = rpc::SloConfig::make({15.0 / 8 * sim::kUsec, 0.0}, 99.9);
  return config;
}

TEST(ExperimentTest, SamplerFiresAtConfiguredCadence) {
  runner::Experiment experiment(small_config());
  int samples = 0;
  sim::Time last = 0.0;
  experiment.sample_every(1 * sim::kMsec, [&](sim::Time t) {
    ++samples;
    EXPECT_GT(t, last);
    last = t;
  });
  experiment.run(0.0, 10 * sim::kMsec, /*drain=*/0.0);
  EXPECT_EQ(samples, 9);  // samples at 1..9ms (run end exclusive)
}

TEST(ExperimentTest, DownlinkUtilizationTracksTraffic) {
  runner::Experiment experiment(small_config());
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  workload::GeneratorConfig gen;
  gen.classes = {{rpc::Priority::kPC, 0.5 * sim::gbps(100), sizes, 0.0}};
  experiment.add_generator(0, gen, workload::fixed_destination(2));
  // Zero drain: utilization is measured over exactly the offered window.
  experiment.run(0.0, 5 * sim::kMsec, /*drain=*/0.0);
  // One of three downlinks at ~50% load (plus tiny ACK traffic on others).
  EXPECT_NEAR(experiment.mean_downlink_utilization(), 0.5 / 3, 0.05);
  EXPECT_NEAR(experiment.network().downlink(2).utilization(
                  experiment.simulator().now()),
              0.5, 0.08);
}

TEST(ExperimentTest, GeneratorWindowRestrictsIssues) {
  runner::Experiment experiment(small_config());
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  workload::GeneratorConfig gen;
  gen.classes = {{rpc::Priority::kPC, 0.2 * sim::gbps(100), sizes, 0.0}};
  gen.window_start = 2 * sim::kMsec;
  gen.window_stop = 4 * sim::kMsec;
  experiment.add_generator(0, gen, workload::fixed_destination(1));
  sim::Time first = -1.0, last = -1.0;
  experiment.stack(0).set_completion_listener(
      [&](const rpc::RpcRecord& r) {
        if (first < 0) first = r.issued;
        last = r.issued;
      });
  experiment.run(0.0, 10 * sim::kMsec);
  EXPECT_GE(first, 2 * sim::kMsec);
  EXPECT_LT(last, 4 * sim::kMsec);
}

TEST(ExperimentTest, UniformPickerNeverSelectsSelf) {
  sim::Rng rng(3);
  auto picker = workload::uniform_destinations(5, 2);
  for (int i = 0; i < 1000; ++i) {
    const net::HostId dst = picker(rng);
    EXPECT_NE(dst, 2);
    EXPECT_GE(dst, 0);
    EXPECT_LT(dst, 5);
  }
}

TEST(ProtocolExperimentTest, BaselineNamesStable) {
  EXPECT_STREQ(runner::baseline_name(runner::BaselineProtocol::kPfabric),
               "pFabric");
  EXPECT_STREQ(runner::baseline_name(runner::BaselineProtocol::kQjump),
               "QJump");
  EXPECT_STREQ(runner::baseline_name(runner::BaselineProtocol::kHoma),
               "Homa");
  EXPECT_STREQ(runner::baseline_name(runner::BaselineProtocol::kD3), "D3");
  EXPECT_STREQ(runner::baseline_name(runner::BaselineProtocol::kPdq),
               "PDQ");
}

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, WfqRejectsEmptyWeights) {
  EXPECT_DEATH(net::WfqQueue(std::vector<double>{}),
               "at least one class");
}

TEST(ContractDeathTest, WfqRejectsNonPositiveWeight) {
  EXPECT_DEATH(net::WfqQueue(std::vector<double>{4.0, 0.0}),
               "weights must be positive");
}

TEST(ContractDeathTest, ExperimentRejectsMismatchedSlo) {
  runner::ExperimentConfig config = small_config();
  config.num_qos = 3;  // but SLO has 2 entries
  EXPECT_DEATH(runner::Experiment experiment(config),
               "SLO config must cover every QoS level");
}

TEST(ContractDeathTest, SimulatorRejectsPastScheduling) {
  sim::Simulator s;
  s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_DEATH(s.schedule_at(0.5, [] {}), "into the past");
}

TEST(ContractDeathTest, AequitasRejectsBadPercentile) {
  core::AequitasConfig config;
  config.slo = rpc::SloConfig::make({15 * sim::kUsec, 0.0}, 100.0);
  EXPECT_DEATH(core::AequitasController(config, sim::Rng(1)),
               "percentile");
}

}  // namespace
}  // namespace aeq
