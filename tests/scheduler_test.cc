// Scheduler-backend tests: the heap/calendar equivalence property (same
// seed => identical event order and identical experiment stats), the
// generation-stamped cancellation contract, and CalendarQueue edge cases
// (overflow cancellation, resize in both directions, tie-breaking,
// next_time() purity).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rpc/slo.h"
#include "runner/experiment.h"
#include "sim/calendar_queue.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "workload/size_dist.h"

namespace aeq {
namespace {

// Same random schedule/cancel/pop trace applied to both backends through
// the EventScheduler interface: every pop must return the same time, every
// cancel the same verdict, and the fired-handler order must be identical.
TEST(SchedulerEquivalenceTest, IdenticalEventOrderUnderRandomOps) {
  const auto backends = {sim::SchedulerBackend::kHeap,
                         sim::SchedulerBackend::kCalendar};
  std::vector<std::vector<int>> fired_per_backend;
  std::vector<std::vector<double>> popped_per_backend;
  std::vector<std::vector<char>> verdicts_per_backend;
  std::vector<std::vector<std::size_t>> sizes_per_backend;
  for (const auto backend : backends) {
    auto queue = sim::make_scheduler(backend);
    sim::Rng rng(2024);  // same seed: same op trace for both backends
    std::vector<sim::EventId> ids;
    std::vector<int> fired;
    std::vector<double> popped;
    std::vector<char> verdicts;
    std::vector<std::size_t> sizes;
    double now = 0.0;
    int next_label = 0;
    for (int round = 0; round < 30000; ++round) {
      const double action = rng.uniform();
      if (action < 0.5 || queue->empty()) {
        // Mixed horizons: dense near-term, sparse far-future (overflow).
        const double t =
            now + (rng.bernoulli(0.9) ? rng.exponential(2e-6)
                                      : rng.uniform(1e-3, 5e-3));
        const int label = next_label++;
        ids.push_back(
            queue->schedule(t, [&fired, label] { fired.push_back(label); }));
      } else if (action < 0.65 && !ids.empty()) {
        // Cancel a random known id (may have fired or been cancelled
        // already); both backends must agree on the verdict.
        verdicts.push_back(queue->cancel(ids[rng.index(ids.size())]) ? 1 : 0);
      } else {
        auto event = queue->pop();
        popped.push_back(event.time);
        now = event.time;
        event.handler();
      }
      sizes.push_back(queue->size());
    }
    while (!queue->empty()) {
      auto event = queue->pop();
      popped.push_back(event.time);
      event.handler();
    }
    fired_per_backend.push_back(std::move(fired));
    popped_per_backend.push_back(std::move(popped));
    verdicts_per_backend.push_back(std::move(verdicts));
    sizes_per_backend.push_back(std::move(sizes));
  }
  ASSERT_EQ(fired_per_backend[0].size(), fired_per_backend[1].size());
  EXPECT_EQ(fired_per_backend[0], fired_per_backend[1]);
  EXPECT_EQ(popped_per_backend[0], popped_per_backend[1]);
  EXPECT_EQ(verdicts_per_backend[0], verdicts_per_backend[1]);
  EXPECT_EQ(sizes_per_backend[0], sizes_per_backend[1]);
}

// Full-stack determinism: an identical experiment config must produce
// bit-identical traffic accounting and latency stats on either backend.
TEST(SchedulerEquivalenceTest, ExperimentStatsIdenticalAcrossBackends) {
  struct Result {
    std::uint64_t events;
    std::uint64_t requested[3];
    std::uint64_t admitted[3];
    std::uint64_t completed[3];
    double p999[3];
  };
  auto run_once = [](sim::SchedulerBackend backend) {
    runner::ExperimentConfig config;
    config.scheduler_backend = backend;
    config.num_hosts = 5;
    config.num_qos = 3;
    config.seed = 7;
    config.slo = rpc::SloConfig::make(
        {25.0 / 8 * sim::kUsec, 50.0 / 8 * sim::kUsec, 0.0}, 99.9);
    runner::Experiment experiment(config);
    const auto* sizes = experiment.own(
        std::make_unique<workload::FixedSize>(32 * sim::kKiB));
    workload::GeneratorConfig gen;
    gen.classes = {{rpc::Priority::kPC, 0.5 * sim::gbps(100), sizes},
                   {rpc::Priority::kBE, 0.5 * sim::gbps(100), sizes}};
    for (std::size_t h = 0; h < config.num_hosts; ++h) {
      experiment.add_generator(static_cast<net::HostId>(h), gen);
    }
    experiment.run(1 * sim::kMsec, 2 * sim::kMsec);
    Result result;
    result.events = experiment.simulator().events_processed();
    for (std::size_t q = 0; q < 3; ++q) {
      result.requested[q] = experiment.metrics().bytes_requested(q);
      result.admitted[q] = experiment.metrics().bytes_admitted(q);
      result.completed[q] = experiment.metrics().bytes_completed(q);
      result.p999[q] = experiment.metrics().rnl_by_run_qos(q).p999();
    }
    return result;
  };
  const Result heap = run_once(sim::SchedulerBackend::kHeap);
  const Result calendar = run_once(sim::SchedulerBackend::kCalendar);
  EXPECT_GT(heap.events, 1000u);
  EXPECT_EQ(heap.events, calendar.events);
  for (std::size_t q = 0; q < 3; ++q) {
    EXPECT_EQ(heap.requested[q], calendar.requested[q]) << "qos " << q;
    EXPECT_EQ(heap.admitted[q], calendar.admitted[q]) << "qos " << q;
    EXPECT_EQ(heap.completed[q], calendar.completed[q]) << "qos " << q;
    EXPECT_DOUBLE_EQ(heap.p999[q], calendar.p999[q]) << "qos " << q;
  }
}

TEST(SchedulerFactoryTest, NamesAndTypes) {
  EXPECT_STREQ(sim::backend_name(sim::SchedulerBackend::kHeap), "heap");
  EXPECT_STREQ(sim::backend_name(sim::SchedulerBackend::kCalendar),
               "calendar");
  EXPECT_NE(dynamic_cast<sim::EventQueue*>(
                sim::make_scheduler(sim::SchedulerBackend::kHeap).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<sim::CalendarQueue*>(
                sim::make_scheduler(sim::SchedulerBackend::kCalendar).get()),
            nullptr);
}

TEST(SimulatorBackendTest, ReportsConfiguredBackend) {
  sim::Simulator heap_sim;  // heap is the Simulator-level default
  EXPECT_EQ(heap_sim.backend(), sim::SchedulerBackend::kHeap);
  sim::Simulator cal_sim(sim::SchedulerBackend::kCalendar);
  EXPECT_EQ(cal_sim.backend(), sim::SchedulerBackend::kCalendar);
  // Both dispatch the same three events in the same order.
  for (sim::Simulator* s : {&heap_sim, &cal_sim}) {
    std::vector<int> order;
    s->schedule_in(3e-6, [&] { order.push_back(3); });
    s->schedule_in(1e-6, [&] { order.push_back(1); });
    s->schedule_in(2e-6, [&] { order.push_back(2); });
    s->run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s->events_processed(), 3u);
  }
}

// --- generation-stamped cancellation contract -----------------------------

TEST(HandleTableTest, StaleIdAfterSlotReuseIsRejected) {
  sim::HandleTable table;
  const sim::EventId first = table.acquire();
  table.release(first);                     // fired: slot goes back
  const sim::EventId reused = table.acquire();  // same slot, new generation
  EXPECT_NE(first.value, reused.value);
  EXPECT_FALSE(table.cancel(first));  // stale generation: reliable no-op
  EXPECT_TRUE(table.live(reused));
  EXPECT_TRUE(table.cancel(reused));
  EXPECT_FALSE(table.cancel(reused));  // double cancel
}

// release() must be called exactly once per acquire(): a double or stale
// release would push the slot onto the free list twice and corrupt every id
// handed out from it afterwards. The validation is AEQ_DCHECK (debug) plus
// AEQ_CHECK under AEQ_AUDIT, so it compiles out of plain release builds.
#if !defined(NDEBUG) || AEQ_AUDIT_ENABLED
TEST(HandleTableDeathTest, DoubleReleaseIsFatal) {
  sim::HandleTable table;
  const sim::EventId id = table.acquire();
  table.release(id);
  EXPECT_DEATH(table.release(id),
               "double release\\(\\) or release\\(\\) of a reused slot");
}

TEST(HandleTableDeathTest, ReleaseAfterSlotReuseIsFatal) {
  sim::HandleTable table;
  const sim::EventId stale = table.acquire();
  table.release(stale);
  const sim::EventId reused = table.acquire();  // same slot, new generation
  ASSERT_TRUE(table.live(reused));
  // Releasing the stale id would invalidate `reused` out from under its
  // owner and double-free the slot.
  EXPECT_DEATH(table.release(stale),
               "double release\\(\\) or release\\(\\) of a reused slot");
}

TEST(HandleTableDeathTest, ReleaseOfOutOfRangeIdIsFatal) {
  sim::HandleTable table;
  (void)table.acquire();
  const sim::EventId bogus{(std::uint64_t{1} << 32) | 0x00ffffffu};
  EXPECT_DEATH(table.release(bogus), "out-of-range event id");
}
#endif  // !defined(NDEBUG) || AEQ_AUDIT_ENABLED

TEST(EventQueueTest, StaleCancelAfterSlotReuseLeavesNewEventLive) {
  sim::EventQueue q;
  const sim::EventId old_id = q.schedule(1.0, [] {});
  q.pop();  // fires the event, freeing its slot for reuse
  bool ran = false;
  q.schedule(2.0, [&] { ran = true; });  // reuses the slot
  EXPECT_FALSE(q.cancel(old_id));        // stale id must not kill the reuser
  EXPECT_EQ(q.size(), 1u);
  q.pop().handler();
  EXPECT_TRUE(ran);
}

TEST(CalendarQueueTest, CancelAfterFireIsHarmlessNoOp) {
  sim::CalendarQueue q;
  const sim::EventId fired = q.schedule(1e-6, [] {});
  q.schedule(2e-6, [] {});
  q.pop().handler();
  // With hash-set bookkeeping this used to corrupt the live count; the
  // generation stamp makes it a reliable no-op.
  EXPECT_FALSE(q.cancel(fired));
  EXPECT_EQ(q.size(), 1u);
  q.pop().handler();
  EXPECT_TRUE(q.empty());
}

// --- CalendarQueue edge cases ---------------------------------------------

TEST(CalendarQueueTest, CancelOfOverflowEventIsSkipped) {
  // 8 buckets x 1us: one rotation covers 8us; 1s is far in the overflow
  // region reached only via the sparse-jump scan.
  sim::CalendarQueue q(1e-6, 8);
  std::vector<int> order;
  const sim::EventId far = q.schedule(1.0, [&] { order.push_back(99); });
  q.schedule(1e-6, [&] { order.push_back(1); });
  q.schedule(3e-6, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(far));
  EXPECT_FALSE(q.cancel(far));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().handler();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(CalendarQueueTest, OverflowEventStillFiresAfterNearTermDrain) {
  sim::CalendarQueue q(1e-6, 8);
  std::vector<double> popped;
  q.schedule(0.5, [] {});     // beyond many rotations
  q.schedule(2.0, [] {});     // even further
  q.schedule(2e-6, [] {});
  while (!q.empty()) popped.push_back(q.pop().time);
  EXPECT_EQ(popped, (std::vector<double>{2e-6, 0.5, 2.0}));
}

TEST(CalendarQueueTest, SlotBoundaryTruncatedEventIsNotStranded) {
  // Regression: t = 0.0018 with the default 1us width truncates to slot 1799
  // in bucket placement (0.0018 / 1e-6 computes just under 1800), while a
  // float rolling-window scan put it in slot 1800's window. The scan then
  // skipped it as "future rotation" forever and it surfaced late — and out
  // of order — via the sparse-jump fallback, silently regressing simulated
  // time. Placement and window membership must share one slot computation.
  sim::CalendarQueue q;  // 1us buckets, 256 of them
  std::vector<double> expected;
  q.schedule(0.0018, [] {});
  expected.push_back(0.0018);
  for (int k = 1; k <= 300; ++k) {
    const double t = 0.0018 + k * 0.7e-6;  // mid-slot, spans > one rotation
    q.schedule(t, [] {});
    expected.push_back(t);
  }
  std::vector<double> popped;
  while (!q.empty()) popped.push_back(q.pop().time);
  EXPECT_EQ(popped, expected);  // already sorted: strictly increasing input
}

TEST(CalendarQueueTest, ResizeBothDirectionsPreservesOrderAndNextTime) {
  sim::CalendarQueue q;  // 256 buckets initially
  sim::Rng rng(31);
  const std::size_t initial_buckets = q.num_buckets();
  for (int i = 0; i < 3000; ++i) q.schedule(rng.uniform(0.0, 1e-3), [] {});
  const std::size_t grown = q.num_buckets();
  EXPECT_GT(grown, initial_buckets);  // doubling triggered
  std::size_t smallest = grown;
  double last = -1.0;
  while (!q.empty()) {
    // next_time() must agree with the following pop and be monotone.
    const double peek = q.next_time();
    const double t = q.pop().time;
    EXPECT_DOUBLE_EQ(peek, t);
    EXPECT_GE(t, last);
    last = t;
    smallest = std::min(smallest, q.num_buckets());
  }
  EXPECT_LT(smallest, grown);  // halving triggered on the way down
}

TEST(CalendarQueueTest, TieBreakBySequenceMatchesEventQueue) {
  sim::CalendarQueue calendar(1e-6, 4);
  sim::EventQueue heap;
  std::vector<std::string> calendar_order, heap_order;
  std::vector<sim::EventId> calendar_ids, heap_ids;
  // Three batches at the same instant, interleaved with batches at another
  // instant, plus cancellation of every third event.
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 5; ++i) {
      const double t = (batch % 2 == 0) ? 5e-6 : 2e-6;
      const std::string label =
          std::to_string(batch) + ":" + std::to_string(i);
      calendar_ids.push_back(calendar.schedule(
          t, [&calendar_order, label] { calendar_order.push_back(label); }));
      heap_ids.push_back(heap.schedule(
          t, [&heap_order, label] { heap_order.push_back(label); }));
    }
  }
  for (std::size_t k = 0; k < calendar_ids.size(); k += 3) {
    EXPECT_EQ(calendar.cancel(calendar_ids[k]), heap.cancel(heap_ids[k]));
  }
  while (!heap.empty()) {
    ASSERT_FALSE(calendar.empty());
    auto ch = calendar.pop();
    auto hh = heap.pop();
    ASSERT_DOUBLE_EQ(ch.time, hh.time);
    ch.handler();
    hh.handler();
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar_order, heap_order);
}

// Regression: next_time() must not commit the epoch advance it scans with —
// scheduling between a peek at a far-future event and the next pop used to
// trip the "cannot schedule into the past" contract.
TEST(CalendarQueueTest, ScheduleAfterNextTimePeekOfFarEvent) {
  sim::CalendarQueue q(1e-6, 8);
  std::vector<double> popped;
  q.schedule(100e-6, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 100e-6);
  // Still allowed: 1us is in the peeked event's past but not the clock's.
  q.schedule(1e-6, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1e-6);
  while (!q.empty()) popped.push_back(q.pop().time);
  EXPECT_EQ(popped, (std::vector<double>{1e-6, 100e-6}));
}

}  // namespace
}  // namespace aeq
