// Steady-state allocation regression test.
//
// The hot-path overhaul (DESIGN.md §10) promises an allocation-free event
// loop once every pool has reached its high-water mark: event nodes live in
// the EventArena, handlers in fixed InlineFunction buffers, packets in
// RingBuffers, channel state in FlatMap64s, and percentile samples in
// pre-reserved vectors. This binary overrides global operator new/delete
// with counting shims and proves the promise end to end: a fig03-style
// Aequitas run (WFQ, 3 QoS, Poisson all-to-all load) performs ZERO heap
// allocations during its post-warmup measurement window, on both scheduler
// backends. Any new `new` on a per-event or per-RPC path fails this test
// rather than quietly eroding events/sec.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "rpc/slo.h"
#include "runner/experiment.h"
#include "sim/units.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace {

// Relaxed is fine: the simulator is single-threaded and the test reads the
// counter from the same thread that bumps it.
std::atomic<std::uint64_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

std::uint64_t allocations() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace aeq {
namespace {

constexpr sim::Time kWarmup = 4 * sim::kMsec;
constexpr sim::Time kMeasure = 8 * sim::kMsec;

struct Tick {
  sim::Time t;
  std::uint64_t allocation_count;
};

// One fig03-style run on the given backend; returns the per-sample
// allocation counter readings taken during run().
std::vector<Tick> run_counted(sim::SchedulerBackend backend) {
  runner::ExperimentConfig config;
  config.scheduler_backend = backend;
  config.num_hosts = 6;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = true;
  config.seed = 7;
  config.slo = rpc::SloConfig::make(
      {25.0 / 8 * sim::kUsec, 50.0 / 8 * sim::kUsec, 0.0}, 99.9);
  // Rare new queue-depth or live-event records otherwise double a ring or
  // arena mid-run; the hints move that growth to construction time.
  config.queue_reserve_packets = 4096;
  config.reserve_events = 1u << 15;
  runner::Experiment experiment(config);

  const auto* sizes =
      experiment.own(std::make_unique<workload::FixedSize>(8 * sim::kKiB));
  for (std::size_t h = 0; h < config.num_hosts; ++h) {
    workload::GeneratorConfig gen;
    const double rate = 0.6 * sim::gbps(100);
    gen.classes = {{rpc::Priority::kPC, 0.4 * rate, sizes, 0.0},
                   {rpc::Priority::kNC, 0.3 * rate, sizes, 0.0},
                   {rpc::Priority::kBE, 0.3 * rate, sizes, 0.0}};
    experiment.add_generator(static_cast<net::HostId>(h), gen);
  }

  // Pre-size the only unbounded per-RPC accumulator (latency samples); the
  // run completes well under this many RPCs per QoS level.
  experiment.metrics().reserve_samples(1u << 18);

  std::vector<Tick> ticks;
  ticks.reserve(1024);  // sampling must not allocate either
  experiment.sample_every(100 * sim::kUsec, [&ticks](sim::Time t) {
    if (ticks.size() < 1024) ticks.push_back(Tick{t, allocations()});
  });
  experiment.run(kWarmup, kMeasure);
  return ticks;
}

class AllocationTest
    : public ::testing::TestWithParam<sim::SchedulerBackend> {};

TEST_P(AllocationTest, SteadyStateEventLoopIsAllocationFree) {
  const std::vector<Tick> ticks = run_counted(GetParam());
  ASSERT_GE(ticks.size(), 80u);

  // Warmup is allowed to allocate: pools are still finding their
  // high-water marks. After it, the counter must be flat — zero heap
  // allocations across the entire measurement window.
  const Tick* start = nullptr;
  for (const Tick& tick : ticks) {
    if (tick.t >= kWarmup) {
      start = &tick;
      break;
    }
  }
  ASSERT_NE(start, nullptr);
  const Tick& end = ticks.back();
  ASSERT_GT(end.t, start->t);
  EXPECT_EQ(end.allocation_count - start->allocation_count, 0u)
      << "steady-state window [" << start->t << "s, " << end.t << "s] "
      << "performed " << (end.allocation_count - start->allocation_count)
      << " heap allocations; the event loop must not touch the allocator "
      << "after warmup (DESIGN.md §10)";
}

INSTANTIATE_TEST_SUITE_P(BothBackends, AllocationTest,
                         ::testing::Values(sim::SchedulerBackend::kHeap,
                                           sim::SchedulerBackend::kCalendar),
                         [](const auto& param_info) {
                           return std::string(
                               sim::backend_name(param_info.param));
                         });

}  // namespace
}  // namespace aeq
