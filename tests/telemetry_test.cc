// Tests for the windowed telemetry pipeline (src/obs/): TimeseriesSink
// window folding and golden CSV/JSON bytes, Watchdog rule/hysteresis
// behavior on synthetic windows, FlightRecorder ring wraparound and dump
// contents, the assert-failure dump hook, and experiment-level wiring —
// including the property the whole layer inherits from PR 4: full telemetry
// enabled leaves every simulation result bit-identical.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/recorder.h"
#include "obs/timeseries_sink.h"
#include "obs/watchdog.h"
#include "runner/experiment.h"
#include "sim/assert.h"

namespace aeq {
namespace {

obs::TimeseriesConfig small_config() {
  obs::TimeseriesConfig config;
  config.window = 5 * sim::kUsec;
  config.num_qos = 2;
  config.recent_capacity = 8;
  return config;
}

// Replays one RPC lifecycle through a recorder: generated at 1.5us,
// downgraded, one enqueue + one drop on port 0, a cwnd move (all inside
// window 0) and the completion at 9us (window 1), then flush at 10us.
void replay_lifecycle(obs::Recorder& recorder) {
  recorder.register_port("sw0-port0");

  obs::RpcGenerated generated;
  generated.t = 1.5 * sim::kUsec;
  generated.rpc_id = 7;
  generated.src = 0;
  generated.dst = 1;
  generated.qos_requested = 0;
  generated.bytes = 1000;
  recorder.rpc_generated(generated);

  obs::AdmissionDecision admission;
  admission.t = 2.0 * sim::kUsec;
  admission.rpc_id = 7;
  admission.src = 0;
  admission.dst = 1;
  admission.qos_from = 0;
  admission.qos_to = 1;
  admission.p_admit = 0.75;
  admission.downgraded = true;
  recorder.admission(admission);

  obs::PacketEvent enqueue;
  enqueue.t = 2.5 * sim::kUsec;
  enqueue.kind = obs::PacketEventKind::kEnqueue;
  enqueue.port = 0;
  enqueue.qos = 1;
  enqueue.bytes = 500;
  enqueue.qlen_bytes = 500;
  enqueue.qlen_packets = 1;
  recorder.packet(enqueue);

  obs::PacketEvent drop;
  drop.t = 3.0 * sim::kUsec;
  drop.kind = obs::PacketEventKind::kDrop;
  drop.port = 0;
  drop.qos = 1;
  drop.bytes = 500;
  drop.qlen_bytes = 500;
  drop.qlen_packets = 1;
  recorder.packet(drop);

  obs::CwndUpdate cwnd;
  cwnd.t = 4.0 * sim::kUsec;
  cwnd.src = 0;
  cwnd.dst = 1;
  cwnd.qos = 1;
  cwnd.cwnd_packets = 8.0;
  recorder.cwnd(cwnd);

  obs::RpcComplete complete;
  complete.t = 9.0 * sim::kUsec;
  complete.rpc_id = 7;
  complete.src = 0;
  complete.dst = 1;
  complete.qos_requested = 0;
  complete.qos_run = 1;
  complete.bytes = 1000;
  complete.rnl = 4.0 * sim::kUsec;
  complete.slo_met = false;
  complete.downgraded = true;
  recorder.rpc_complete(complete);

  recorder.flush(10.0 * sim::kUsec);
}

// Golden-file test: the exact bytes of the windowed CSV for the fixed
// lifecycle. Deliberately brittle — the timeline is consumed by
// tools/validate_trace.py and downstream plotting, so any schema change
// should be a conscious one that updates this expectation. Notable cells:
// the admission-plane aggregates live only in window 0 (where the decision
// happened), the completion's bytes are attributed to the *delivered*
// QoS 1 while the RPC-level stats stay with the *requested* QoS 0, the
// single-sample RNL percentiles coincide (4us, reported at the log-bucket
// upper edge 4.151us, within the histogram's 2%-wide bucket), and the idle
// port row is omitted from
// window 1.
TEST(TimeseriesGoldenTest, CsvBytes) {
  std::ostringstream csv;
  obs::TimeseriesSink sink(small_config(), &csv, nullptr);
  obs::Recorder recorder;
  recorder.add_sink(&sink);
  replay_lifecycle(recorder);

  const std::string expected =
      std::string(obs::TimeseriesSink::csv_header()) + "\n" +
      "0.000,5.000,global,0,0,,,,,,0,,0.75,0.75,0,1,0,1,1,0,,\n"
      "0.000,5.000,qos0,0,0,0,1,0.000,0.000,0.000,0,0,,,,,,,,,,\n"
      "0.000,5.000,qos1,0,0,0,1,0.000,0.000,0.000,0,0,,,,,,,,,,\n"
      "0.000,5.000,port:sw0-port0,,,,,,,,,,,,,,,1,1,0,500,500\n"
      "5.000,10.000,global,1,0,,,,,,1000,,1,1,0,0,0,0,0,0,,\n"
      "5.000,10.000,qos0,1,0,0,0,4.151,4.151,4.151,0,0,,,,,,,,,,\n"
      "5.000,10.000,qos1,0,0,0,1,0.000,0.000,0.000,1000,1,,,,,,,,,,\n";
  EXPECT_EQ(csv.str(), expected);
  EXPECT_EQ(sink.windows_closed(), 2u);
}

TEST(TimeseriesGoldenTest, JsonBytes) {
  std::ostringstream json;
  obs::TimeseriesSink sink(small_config(), nullptr, &json);
  obs::Recorder recorder;
  recorder.add_sink(&sink);
  replay_lifecycle(recorder);

  const std::string expected =
      "{\"window_width_us\":5,\"windows\":[\n"
      "{\"window_start_us\":0.000,\"window_end_us\":5.000,"
      "\"global\":{\"completed\":0,\"terminated\":0,\"generated\":1,"
      "\"bytes\":0,\"admits\":0,\"downgrades\":1,\"admission_drops\":0,"
      "\"p_admit_mean\":0.75,\"p_admit_min\":0.75,\"packet_drops\":1},"
      "\"qos\":["
      "{\"qos\":0,\"completed\":0,\"terminated\":0,\"slo_met\":0,"
      "\"slo_compliance\":1,\"rnl_p50_us\":0.000,\"rnl_p90_us\":0.000,"
      "\"rnl_p99_us\":0.000,\"bytes\":0,\"byte_share\":0},"
      "{\"qos\":1,\"completed\":0,\"terminated\":0,\"slo_met\":0,"
      "\"slo_compliance\":1,\"rnl_p50_us\":0.000,\"rnl_p90_us\":0.000,"
      "\"rnl_p99_us\":0.000,\"bytes\":0,\"byte_share\":0}],"
      "\"ports\":[{\"port\":\"sw0-port0\",\"enqueued\":1,\"dequeued\":0,"
      "\"drops\":1,\"qlen_max_bytes\":500,\"qlen_mean_bytes\":500}]},\n"
      "{\"window_start_us\":5.000,\"window_end_us\":10.000,"
      "\"global\":{\"completed\":1,\"terminated\":0,\"generated\":0,"
      "\"bytes\":1000,\"admits\":0,\"downgrades\":0,\"admission_drops\":0,"
      "\"p_admit_mean\":1,\"p_admit_min\":1,\"packet_drops\":0},"
      "\"qos\":["
      "{\"qos\":0,\"completed\":1,\"terminated\":0,\"slo_met\":0,"
      "\"slo_compliance\":0,\"rnl_p50_us\":4.151,\"rnl_p90_us\":4.151,"
      "\"rnl_p99_us\":4.151,\"bytes\":0,\"byte_share\":0},"
      "{\"qos\":1,\"completed\":0,\"terminated\":0,\"slo_met\":0,"
      "\"slo_compliance\":1,\"rnl_p50_us\":0.000,\"rnl_p90_us\":0.000,"
      "\"rnl_p99_us\":0.000,\"bytes\":1000,\"byte_share\":1}],"
      "\"ports\":[]}\n"
      "]}\n";
  EXPECT_EQ(json.str(), expected);
}

// Golden bytes for the controller-gauge rows (PR-10 satellite): with a
// gauge provider attached, every closed window grows one `gauge:<name>`
// CSV row per gauge (fleet mean / fleet min in the p_admit columns) and a
// JSON "gauges" array. The provider is sampled at window close, so the
// two windows can carry different values.
TEST(TimeseriesGoldenTest, GaugeRowsCsvAndJsonBytes) {
  std::ostringstream csv;
  std::ostringstream json;
  obs::TimeseriesSink sink(small_config(), &csv, &json);
  int samples = 0;
  sink.set_gauge_provider([&samples] {
    ++samples;
    std::vector<obs::WindowStats::GaugeStat> gauges;
    gauges.push_back({"fq_threshold", 0.5 * samples, 0.25 * samples});
    gauges.push_back({"p_admit", 1.0, 0.75});
    return gauges;
  });
  obs::Recorder recorder;
  recorder.add_sink(&sink);
  replay_lifecycle(recorder);

  ASSERT_EQ(samples, 2);  // one sample per closed window
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find(
                "0.000,5.000,gauge:fq_threshold,,,,,,,,,,0.5,0.25,,,,,,,,\n"),
            std::string::npos);
  EXPECT_NE(
      csv_text.find("0.000,5.000,gauge:p_admit,,,,,,,,,,1,0.75,,,,,,,,\n"),
      std::string::npos);
  EXPECT_NE(csv_text.find(
                "5.000,10.000,gauge:fq_threshold,,,,,,,,,,1,0.5,,,,,,,,\n"),
            std::string::npos);
  const std::string json_text = json.str();
  EXPECT_NE(json_text.find(
                "\"gauges\":[{\"name\":\"fq_threshold\",\"mean\":0.5,"
                "\"min\":0.25},{\"name\":\"p_admit\",\"mean\":1,"
                "\"min\":0.75}]"),
            std::string::npos);
  // Gauge rows ride after the port rows, inside the same window block.
  EXPECT_LT(csv_text.find("port:sw0-port0"),
            csv_text.find("gauge:fq_threshold"));
}

TEST(TimeseriesSinkTest, GaugeProviderTwiceDies) {
  obs::TimeseriesSink sink(small_config(), nullptr, nullptr);
  sink.set_gauge_provider(
      [] { return std::vector<obs::WindowStats::GaugeStat>{}; });
  EXPECT_DEATH(sink.set_gauge_provider(
                   [] { return std::vector<obs::WindowStats::GaugeStat>{}; }),
               "gauge provider already set");
}

TEST(TimeseriesSinkTest, AdvanceClosesEmptyWindowsAndFlushIsIdempotent) {
  obs::TimeseriesSink sink(small_config(), nullptr, nullptr);
  sink.advance_to(17 * sim::kUsec);  // windows [0,5) [5,10) [10,15) close
  EXPECT_EQ(sink.windows_closed(), 3u);
  for (const auto& window : sink.recent()) {
    EXPECT_EQ(window.events, 0u);
    EXPECT_DOUBLE_EQ(window.qos[0].slo_compliance, 1.0);
  }
  sink.flush(17 * sim::kUsec);  // empty partial window is not emitted
  EXPECT_EQ(sink.windows_closed(), 3u);
  sink.flush(25 * sim::kUsec);  // finalized: no further windows
  EXPECT_EQ(sink.windows_closed(), 3u);
}

TEST(TimeseriesSinkTest, RecentRingIsBoundedAndRendersStandaloneCsv) {
  auto config = small_config();
  config.recent_capacity = 4;
  obs::TimeseriesSink sink(config, nullptr, nullptr);
  sink.advance_to(10 * config.window + config.window / 2);
  EXPECT_EQ(sink.windows_closed(), 10u);
  ASSERT_EQ(sink.recent().size(), 4u);
  EXPECT_EQ(sink.recent().front().index, 6u);
  EXPECT_EQ(sink.recent().back().index, 9u);

  std::ostringstream out;
  sink.write_recent_csv(out);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind(obs::TimeseriesSink::csv_header(), 0), 0u);
  EXPECT_NE(text.find("\n30.000,35.000,global,"), std::string::npos);
  EXPECT_EQ(text.find("\n25.000,30.000,global,"), std::string::npos);
}

TEST(TimeseriesSinkTest, WindowListenersRunAtCloseInOrder) {
  obs::TimeseriesSink sink(small_config(), nullptr, nullptr);
  std::vector<std::string> log;
  sink.add_window_listener([&log](const obs::WindowStats& window) {
    std::string entry = "a";
    entry += std::to_string(window.index);
    log.push_back(entry);
  });
  sink.add_window_listener([&log](const obs::WindowStats& window) {
    std::string entry = "b";
    entry += std::to_string(window.index);
    log.push_back(entry);
  });
  sink.advance_to(11 * sim::kUsec);
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "a1", "b1"}));
}

// --- watchdog rules on synthetic windows ----------------------------------

obs::WindowStats make_window(std::uint64_t index) {
  obs::WindowStats window;
  window.index = index;
  window.start = static_cast<double>(index) * 100 * sim::kUsec;
  window.end = window.start + 100 * sim::kUsec;
  window.qos.resize(2);
  window.qos[0].completed = 100;
  window.qos[0].slo_met = 100;
  window.qos[0].slo_compliance = 1.0;
  window.qos[1].slo_compliance = 1.0;
  window.ports.resize(1);
  window.events = 50;
  return window;
}

obs::WatchdogConfig strict_config() {
  obs::WatchdogConfig config;
  config.compliance_target = {0.9, 0.0};  // qos1: no alarm
  config.compliance_windows = 3;
  config.compliance_min_completions = 16;
  config.p_admit_floor = 0.05;
  config.p_admit_windows = 2;
  config.saturation_qlen_bytes = 1000;
  config.saturation_windows = 2;
  config.stall_windows = 2;
  return config;
}

TEST(WatchdogTest, ComplianceFiresAtKConsecutiveAndLatches) {
  obs::Watchdog watchdog(strict_config());
  int fired = 0;
  watchdog.add_callback([&fired](const obs::Anomaly&) { ++fired; });

  for (std::uint64_t i = 0; i < 10; ++i) {
    auto window = make_window(i);
    window.qos[0].slo_met = 40;
    window.qos[0].slo_compliance = 0.4;
    watchdog.on_window(window);
  }
  // Fires exactly once at the third bad window, then stays latched through
  // the sustained violation.
  EXPECT_EQ(fired, 1);
  ASSERT_EQ(watchdog.anomalies().size(), 1u);
  const obs::Anomaly& anomaly = watchdog.anomalies()[0];
  EXPECT_EQ(anomaly.kind, obs::Anomaly::Kind::kSloCompliance);
  EXPECT_EQ(anomaly.window, 2u);
  EXPECT_EQ(anomaly.qos, 0);
  EXPECT_DOUBLE_EQ(anomaly.value, 0.4);
  EXPECT_DOUBLE_EQ(anomaly.threshold, 0.9);
  EXPECT_EQ(anomaly.consecutive, 3u);
  EXPECT_EQ(obs::describe(anomaly),
            "t_us=300.000 window=2 kind=slo_compliance qos=0 value=0.4 "
            "threshold=0.9 consecutive=3");

  // One healthy window re-arms; K more bad windows fire again.
  watchdog.on_window(make_window(10));
  for (std::uint64_t i = 11; i < 14; ++i) {
    auto window = make_window(i);
    window.qos[0].slo_compliance = 0.4;
    watchdog.on_window(window);
  }
  EXPECT_EQ(fired, 2);
}

TEST(WatchdogTest, ShortStreaksAndThinWindowsStaySilent) {
  obs::Watchdog watchdog(strict_config());

  // Two bad windows, one good, two bad, ... never reaches K=3.
  for (std::uint64_t i = 0; i < 12; ++i) {
    auto window = make_window(i);
    if (i % 3 != 2) window.qos[0].slo_compliance = 0.1;
    watchdog.on_window(window);
  }
  EXPECT_TRUE(watchdog.anomalies().empty());

  // Windows below the completion floor carry no statistical weight: three
  // awful-but-thin windows don't fire.
  for (std::uint64_t i = 12; i < 16; ++i) {
    auto window = make_window(i);
    window.qos[0].completed = 3;
    window.qos[0].slo_met = 0;
    window.qos[0].slo_compliance = 0.0;
    watchdog.on_window(window);
  }
  EXPECT_TRUE(watchdog.anomalies().empty());
  EXPECT_EQ(watchdog.windows_seen(), 16u);
}

TEST(WatchdogTest, QuietPeriodSuppressesEveryRule) {
  auto config = strict_config();
  config.quiet_until = 350 * sim::kUsec;  // windows 0..2 end inside it
  obs::Watchdog watchdog(config);
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto window = make_window(i);
    window.qos[0].slo_compliance = 0.0;
    window.qos[0].slo_met = 0;
    watchdog.on_window(window);
  }
  // Windows 3 and 4 are the only ones past the quiet period: streak 2 < 3.
  EXPECT_TRUE(watchdog.anomalies().empty());
  auto window = make_window(5);
  window.qos[0].slo_compliance = 0.0;
  window.qos[0].slo_met = 0;
  watchdog.on_window(window);
  EXPECT_EQ(watchdog.anomalies().size(), 1u);
}

TEST(WatchdogTest, PAdmitCollapseWatchesWorstChannel) {
  obs::Watchdog watchdog(strict_config());
  for (std::uint64_t i = 0; i < 4; ++i) {
    auto window = make_window(i);
    window.admits = 10;
    window.p_admit_mean = 0.8;  // healthy on average...
    window.p_admit_min = 0.01;  // ...but one channel is collapsed
    watchdog.on_window(window);
  }
  ASSERT_EQ(watchdog.anomalies().size(), 1u);
  EXPECT_EQ(watchdog.anomalies()[0].kind,
            obs::Anomaly::Kind::kPAdmitCollapse);
  EXPECT_EQ(watchdog.anomalies()[0].window, 1u);  // fires at K=2

  // Windows with no admission decisions don't advance the streak.
  obs::Watchdog idle_watchdog(strict_config());
  for (std::uint64_t i = 0; i < 4; ++i) {
    auto window = make_window(i);
    window.p_admit_min = 0.01;  // stale default, no decisions this window
    idle_watchdog.on_window(window);
  }
  EXPECT_TRUE(idle_watchdog.anomalies().empty());
}

TEST(WatchdogTest, PortSaturationIsPerPort) {
  obs::Watchdog watchdog(strict_config());
  for (std::uint64_t i = 0; i < 4; ++i) {
    auto window = make_window(i);
    window.ports.resize(3);
    window.ports[2].qlen_max_bytes = 5000;  // > 1000-byte limit
    watchdog.on_window(window);
  }
  ASSERT_EQ(watchdog.anomalies().size(), 1u);
  EXPECT_EQ(watchdog.anomalies()[0].kind,
            obs::Anomaly::Kind::kPortSaturation);
  EXPECT_EQ(watchdog.anomalies()[0].port, 2);
  EXPECT_DOUBLE_EQ(watchdog.anomalies()[0].value, 5000.0);
}

TEST(WatchdogTest, StallNeedsOutstandingWorkAndRespectsHorizon) {
  obs::Watchdog watchdog(strict_config());
  for (std::uint64_t i = 0; i < 4; ++i) {
    auto window = make_window(i);
    window.events = 0;  // quiet, but nothing outstanding: idle, not stalled
    watchdog.on_window(window);
  }
  EXPECT_TRUE(watchdog.anomalies().empty());

  for (std::uint64_t i = 4; i < 6; ++i) {
    auto window = make_window(i);
    window.events = 0;
    window.cum_generated = 100;
    window.cum_finished = 80;
    watchdog.on_window(window);
  }
  ASSERT_EQ(watchdog.anomalies().size(), 1u);
  EXPECT_EQ(watchdog.anomalies()[0].kind, obs::Anomaly::Kind::kStall);
  EXPECT_DOUBLE_EQ(watchdog.anomalies()[0].value, 20.0);

  // Past the stall horizon (the drain), quiescence with residue is normal.
  auto config = strict_config();
  config.stall_horizon = 400 * sim::kUsec;
  obs::Watchdog drained(config);
  for (std::uint64_t i = 4; i < 10; ++i) {  // windows end at 500us+
    auto window = make_window(i);
    window.events = 0;
    window.cum_generated = 100;
    window.cum_finished = 80;
    drained.on_window(window);
  }
  EXPECT_TRUE(drained.anomalies().empty());
}

// --- flight recorder -------------------------------------------------------

TEST(FlightRecorderTest, RingRetainsOnlyTheLastNPerCategory) {
  obs::FlightRecorderConfig config;
  config.capacity = 4;
  obs::FlightRecorder flight(config);
  for (std::uint64_t i = 0; i < 10; ++i) {
    obs::RpcGenerated generated;
    generated.t = static_cast<double>(i) * sim::kUsec;
    generated.rpc_id = i;
    generated.src = 0;
    generated.dst = 1;
    flight.on_rpc_generated(generated);
  }
  EXPECT_EQ(flight.events_seen(), 10u);
  EXPECT_EQ(flight.events_retained(), 4u);

  std::ostringstream out;
  flight.dump(out);
  const std::string dump = out.str();
  EXPECT_EQ(flight.dumps(), 1u);
  // Wraparound kept exactly rpc ids 6..9.
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(dump.find("\"rpc_id\":" + std::to_string(i) + ","),
              std::string::npos);
  }
  for (std::uint64_t i = 6; i < 10; ++i) {
    EXPECT_NE(dump.find("\"rpc_id\":" + std::to_string(i) + ","),
              std::string::npos);
  }
}

TEST(FlightRecorderTest, DumpMergesCategoriesNamesPortsAndMarksAnomaly) {
  obs::FlightRecorder flight(obs::FlightRecorderConfig{});
  obs::Recorder recorder;
  recorder.add_sink(&flight);
  replay_lifecycle(recorder);

  obs::Anomaly anomaly;
  anomaly.kind = obs::Anomaly::Kind::kSloCompliance;
  anomaly.t = 10 * sim::kUsec;
  anomaly.window = 1;
  anomaly.qos = 0;
  anomaly.value = 0.0;
  anomaly.threshold = 0.9;
  anomaly.consecutive = 3;

  std::ostringstream out;
  flight.dump(out, &anomaly);
  const std::string dump = out.str();
  // A closed Chrome-trace document with the registered port named, every
  // retained category present, in time order, and the anomaly marked.
  EXPECT_EQ(dump.rfind(R"({"displayTimeUnit":"ms","traceEvents":[)", 0), 0u);
  EXPECT_EQ(dump.substr(dump.size() - 4), "\n]}\n");
  EXPECT_NE(dump.find(R"("name":"sw0-port0")"), std::string::npos);
  EXPECT_NE(dump.find(R"("name":"rpc_generated")"), std::string::npos);
  EXPECT_NE(dump.find(R"("name":"downgrade")"), std::string::npos);
  EXPECT_NE(dump.find(R"("name":"packet_drop")"), std::string::npos);
  EXPECT_NE(dump.find(R"("name":"qlen")"), std::string::npos);
  EXPECT_NE(dump.find(R"("cat":"anomaly")"), std::string::npos);
  EXPECT_NE(dump.find("kind=slo_compliance qos=0"), std::string::npos);
  EXPECT_LT(dump.find(R"("name":"rpc_generated")"),
            dump.find(R"("cat":"transport")"));

  // Lookback bounds the snapshot to events near the anomaly.
  obs::FlightRecorderConfig bounded_config;
  bounded_config.lookback = 3 * sim::kUsec;  // keeps t >= 7us only
  obs::FlightRecorder bounded(bounded_config);
  obs::Recorder bounded_recorder;
  bounded_recorder.add_sink(&bounded);
  replay_lifecycle(bounded_recorder);
  std::ostringstream bounded_out;
  bounded.dump(bounded_out, &anomaly);
  EXPECT_EQ(bounded_out.str().find(R"("name":"rpc_generated")"),
            std::string::npos);
  EXPECT_NE(bounded_out.str().find(R"("name":"rpc")"), std::string::npos);
}

// --- assert-failure hook ---------------------------------------------------

TEST(FailureSinkTest, InvokeRunsHookOnceAndClearsIt) {
  int calls = 0;
  detail::g_failure_sink = +[](void* arg) {
    ++*static_cast<int*>(arg);
  };
  detail::g_failure_sink_arg = &calls;
  detail::invoke_failure_sink();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(detail::g_failure_sink, nullptr);
  detail::invoke_failure_sink();  // cleared: second invoke is a no-op
  EXPECT_EQ(calls, 1);
}

TEST(FailureSinkDeathTest, HookRunsBeforeAbort) {
  EXPECT_DEATH(
      {
        detail::g_failure_sink = +[](void*) {
          std::fprintf(stderr, "FLIGHT-DUMP-HOOK-RAN\n");
        };
        AEQ_ASSERT(false);
      },
      "FLIGHT-DUMP-HOOK-RAN");
}

// --- experiment-level wiring ----------------------------------------------

runner::ExperimentConfig wired_config(sim::SchedulerBackend backend) {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  config.scheduler = net::SchedulerType::kWfq;
  config.scheduler_backend = backend;
  config.enable_aequitas = true;
  config.buffer_bytes = 256 * 1024;
  config.slo = rpc::SloConfig::make({15.0 / 8 * sim::kUsec, 0.0}, 99.9);
  config.audit = false;
  return config;
}

void attach_overload(runner::Experiment& experiment) {
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  workload::GeneratorConfig gen;
  gen.classes = {{rpc::Priority::kPC, 0.6 * sim::gbps(100), sizes, 0.0},
                 {rpc::Priority::kBE, 0.5 * sim::gbps(100), sizes, 0.0}};
  experiment.add_generator(0, gen, workload::fixed_destination(2));
  experiment.add_generator(1, gen, workload::fixed_destination(2));
}

runner::TelemetrySpec full_spec(const std::string& stem) {
  runner::TelemetrySpec spec;
  spec.timeseries_csv = stem + ".ts.csv";
  spec.timeseries_json = stem + ".ts.json";
  spec.timeseries_width = 100 * sim::kUsec;
  spec.watchdog = true;
  spec.watchdog_log = stem + ".watchdog.log";
  spec.flight_recorder = stem + ".flight.json";
  return spec;
}

void remove_outputs(const std::string& stem) {
  for (const char* suffix :
       {".ts.csv", ".ts.json", ".watchdog.log", ".flight.json",
        ".flight.json.timeseries.csv"}) {
    std::remove((stem + suffix).c_str());
  }
}

struct Outcome {
  std::uint64_t completed = 0;
  std::vector<double> p999;
  std::vector<double> share;
};

Outcome run_once(sim::SchedulerBackend backend, const std::string& stem) {
  runner::Experiment experiment(wired_config(backend));
  if (!stem.empty()) experiment.enable_telemetry(full_spec(stem));
  attach_overload(experiment);
  experiment.run(0.0, 3 * sim::kMsec);
  Outcome outcome;
  outcome.completed = experiment.metrics().total_completed();
  for (net::QoSLevel qos = 0; qos < 2; ++qos) {
    outcome.p999.push_back(experiment.metrics().rnl_by_run_qos(qos).p999());
    outcome.share.push_back(experiment.metrics().admitted_share(qos));
  }
  return outcome;
}

// The PR-4 guarantee extended to the windowed pipeline: timeseries +
// watchdog + flight recorder all enabled must leave every simulation
// result bit-identical, on both scheduler backends.
TEST(TelemetryWiringTest, FullTelemetryIsBitIdentical) {
  for (const auto backend : {sim::SchedulerBackend::kHeap,
                             sim::SchedulerBackend::kCalendar}) {
    SCOPED_TRACE(sim::backend_name(backend));
    const std::string stem = ::testing::TempDir() + "telemetry_identity_" +
                             sim::backend_name(backend);
    const Outcome bare = run_once(backend, "");
    const Outcome full = run_once(backend, stem);
    EXPECT_GT(bare.completed, 0u);
    EXPECT_EQ(bare.completed, full.completed);
    for (std::size_t qos = 0; qos < 2; ++qos) {
      EXPECT_EQ(bare.p999[qos], full.p999[qos]);
      EXPECT_EQ(bare.share[qos], full.share[qos]);
    }
    remove_outputs(stem);
  }
}

TEST(TelemetryWiringTest, WatchdogFiresOnOverloadAndFlightDumps) {
  const std::string stem = ::testing::TempDir() + "telemetry_overload";
  runner::Experiment experiment(wired_config(sim::SchedulerBackend::kCalendar));
  experiment.enable_telemetry(full_spec(stem));
  ASSERT_NE(experiment.tracing(), nullptr);
  ASSERT_NE(experiment.timeseries(), nullptr);
  ASSERT_NE(experiment.watchdog(), nullptr);
  ASSERT_NE(experiment.flight_recorder(), nullptr);
  attach_overload(experiment);
  experiment.run(0.0, 3 * sim::kMsec);

  // The 110%-load workload against a 15us SLO must trip the compliance
  // rule; the first anomaly dumps the flight recorder.
  ASSERT_FALSE(experiment.watchdog()->anomalies().empty());
  EXPECT_GT(experiment.timeseries()->windows_closed(), 10u);
  EXPECT_GT(experiment.flight_recorder()->dumps(), 0u);

  std::ifstream flight(stem + ".flight.json");
  ASSERT_TRUE(flight.is_open());
  std::stringstream buffer;
  buffer << flight.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_EQ(dump.rfind(R"({"displayTimeUnit":"ms","traceEvents":[)", 0), 0u);
  EXPECT_EQ(dump.substr(dump.size() - 4), "\n]}\n");
  EXPECT_NE(dump.find(R"("cat":"anomaly")"), std::string::npos);

  std::ifstream sidecar(stem + ".flight.json.timeseries.csv");
  ASSERT_TRUE(sidecar.is_open());
  std::string header;
  std::getline(sidecar, header);
  EXPECT_EQ(header, obs::TimeseriesSink::csv_header());

  std::ifstream log(stem + ".watchdog.log");
  ASSERT_TRUE(log.is_open());
  std::string line;
  std::getline(log, line);
  EXPECT_NE(line.find("[watchdog] "), std::string::npos);
  EXPECT_NE(line.find("kind="), std::string::npos);
  remove_outputs(stem);
}

TEST(TelemetryWiringTest, CalmRunStaysSilent) {
  const std::string stem = ::testing::TempDir() + "telemetry_calm";
  runner::Experiment experiment(wired_config(sim::SchedulerBackend::kCalendar));
  experiment.enable_telemetry(full_spec(stem));
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  workload::GeneratorConfig gen;
  gen.classes = {{rpc::Priority::kPC, 0.05 * sim::gbps(100), sizes, 0.0}};
  experiment.add_generator(0, gen, workload::fixed_destination(2));
  experiment.run(0.0, 3 * sim::kMsec);

  EXPECT_TRUE(experiment.watchdog()->anomalies().empty());
  EXPECT_EQ(experiment.flight_recorder()->dumps(), 0u);
  EXPECT_GT(experiment.timeseries()->windows_closed(), 10u);
  remove_outputs(stem);
}

TEST(TelemetryWiringTest, EnableTelemetryTwiceDies) {
  runner::Experiment experiment(wired_config(sim::SchedulerBackend::kHeap));
  experiment.enable_telemetry(full_spec(::testing::TempDir() + "tel_twice"));
  EXPECT_DEATH(experiment.enable_telemetry(
                   full_spec(::testing::TempDir() + "tel_twice2")),
               "already enabled");
  remove_outputs(::testing::TempDir() + "tel_twice");
}

// An audit/assert failure mid-run dumps the flight recorder before the
// abort: the child process dies on the failed check, and the dump it left
// behind is a closed, loadable trace.
TEST(TelemetryWiringDeathTest, AssertFailureLeavesFlightDump) {
  const std::string stem = ::testing::TempDir() + "telemetry_crash";
  remove_outputs(stem);
  EXPECT_DEATH(
      {
        runner::Experiment experiment(
            wired_config(sim::SchedulerBackend::kCalendar));
        experiment.enable_telemetry(full_spec(stem));
        attach_overload(experiment);
        experiment.run(0.0, 500 * sim::kUsec);
        AEQ_CHECK_EQ_MSG(1, 2, "injected invariant failure");
      },
      "injected invariant failure");

  std::ifstream flight(stem + ".flight.json");
  ASSERT_TRUE(flight.is_open());
  std::stringstream buffer;
  buffer << flight.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_EQ(dump.rfind(R"({"displayTimeUnit":"ms","traceEvents":[)", 0), 0u);
  EXPECT_EQ(dump.substr(dump.size() - 4), "\n]}\n");
  std::ifstream sidecar(stem + ".flight.json.timeseries.csv");
  EXPECT_TRUE(sidecar.is_open());
  remove_outputs(stem);
}

}  // namespace
}  // namespace aeq
