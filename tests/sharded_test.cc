// Sharded-execution property suite: the conservative-PDES executive
// (sim::ShardedSimulator + net::ShardFabric + topo::build_sharded_star)
// must reproduce the serial schedule exactly.
//
//  * ShardedSimulator unit tests: window protocol, adaptive horizon,
//    barrier callbacks, cross-shard scheduling at the barrier.
//  * The determinism property (the PR's defining constraint): for a fixed
//    seed, a 2- and 4-shard run produces RpcMetrics identical to the
//    serial run — same sample multisets (percentiles, counts, maxima bit
//    for bit), same byte/RPC accounting — on both scheduler backends,
//    with invariant auditing enabled and clean.
//  * Event-count identity: with audit and telemetry off, the sum of
//    per-shard event counts equals the serial count (the cross-shard
//    handoff costs one tx-end plus one arrival event per packet, exactly
//    like the serial link pipeline).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "runner/experiment.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace aeq {
namespace {

// ---------------------------------------------------------------------------
// ShardedSimulator unit tests
// ---------------------------------------------------------------------------

TEST(ShardedSimulatorTest, RunsEventsOnEveryShardAndSyncsClocks) {
  sim::ShardedSimulator sharded(3, sim::SchedulerBackend::kHeap,
                                /*lookahead=*/1.0);
  std::atomic<int> fired{0};
  for (std::size_t k = 0; k < sharded.num_shards(); ++k) {
    for (int i = 1; i <= 4; ++i) {
      sharded.shard(k).schedule_at(static_cast<double>(i),
                                   [&fired] { ++fired; });
    }
  }
  sharded.run_until(10.0);
  EXPECT_EQ(fired.load(), 12);
  EXPECT_DOUBLE_EQ(sharded.now(), 10.0);
  for (std::size_t k = 0; k < sharded.num_shards(); ++k) {
    EXPECT_DOUBLE_EQ(sharded.shard(k).now(), 10.0) << "shard " << k;
  }
  EXPECT_EQ(sharded.events_processed(), 12u);
  EXPECT_EQ(sharded.pending_events(), 0u);
}

TEST(ShardedSimulatorTest, AdaptiveHorizonSkipsIdleGaps) {
  // Two events 1000 time units apart with lookahead 1: a fixed-step
  // window protocol would need ~1000 barriers; the adaptive horizon
  // chases the earliest pending event, so two windows suffice.
  sim::ShardedSimulator sharded(2, sim::SchedulerBackend::kHeap,
                                /*lookahead=*/1.0);
  int fired = 0;
  sharded.shard(0).schedule_at(1.0, [&fired] { ++fired; });
  sharded.shard(1).schedule_at(1000.0, [&fired] { ++fired; });
  sharded.run_until(2000.0);
  EXPECT_EQ(fired, 2);
  EXPECT_LE(sharded.windows_executed(), 4u);
}

TEST(ShardedSimulatorTest, BarrierCallbackMayScheduleAcrossShards) {
  // Model the fabric handoff: at each barrier, forward a token from shard
  // 0 into shard 1 at now + lookahead (the conservative-arrival bound).
  sim::ShardedSimulator sharded(2, sim::SchedulerBackend::kCalendar,
                                /*lookahead=*/0.5);
  std::vector<double> deliveries;
  bool pending = false;
  sharded.set_barrier_callback([&] {
    if (!pending) return;
    pending = false;
    const double arrival = sharded.now() + sharded.lookahead();
    sharded.shard(1).schedule_at(
        arrival, [&deliveries, &sharded] {
          deliveries.push_back(sharded.shard(1).now());
        });
  });
  sharded.shard(0).schedule_at(1.0, [&pending] { pending = true; });
  sharded.run_until(10.0);
  ASSERT_EQ(deliveries.size(), 1u);
  // The token left shard 0 at t=1 and landed one lookahead later or after.
  EXPECT_GE(deliveries[0], 1.0 + 0.5);
  EXPECT_LE(deliveries[0], 10.0);
}

TEST(ShardedSimulatorTest, RepeatedRunUntilAdvancesMonotonically) {
  sim::ShardedSimulator sharded(2, sim::SchedulerBackend::kHeap, 1.0);
  int fired = 0;
  sharded.shard(0).schedule_at(1.0, [&fired] { ++fired; });
  sharded.shard(1).schedule_at(5.0, [&fired] { ++fired; });
  sharded.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sharded.now(), 3.0);
  sharded.run_until(8.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sharded.now(), 8.0);
}

// ---------------------------------------------------------------------------
// Shard-determinism property suite
// ---------------------------------------------------------------------------

// Everything RpcMetrics exposes that must be reproduced exactly. The
// tracker means are compared with a 1-ulp-scale tolerance instead: the
// per-shard merge adds the same samples in a different order, and float
// summation is not associative (see rpc::RpcMetrics::merge).
struct MetricsSnapshot {
  std::uint64_t total_completed = 0;
  std::vector<std::uint64_t> completed;
  std::vector<std::uint64_t> downgraded;
  std::vector<std::uint64_t> terminated;
  std::vector<std::uint64_t> bytes_requested;
  std::vector<std::uint64_t> bytes_admitted;
  std::vector<std::uint64_t> bytes_completed;
  std::vector<std::uint64_t> slo_eligible;
  std::vector<std::uint64_t> slo_met;
  std::vector<std::uint64_t> rnl_count;
  std::vector<double> rnl_p50;
  std::vector<double> rnl_p99;
  std::vector<double> rnl_p999;
  std::vector<double> rnl_max;
  std::vector<double> rnl_mean;
};

MetricsSnapshot snapshot(const rpc::RpcMetrics& metrics,
                         std::size_t num_qos) {
  MetricsSnapshot snap;
  snap.total_completed = metrics.total_completed();
  for (std::size_t q = 0; q < num_qos; ++q) {
    const auto qos = static_cast<net::QoSLevel>(q);
    snap.completed.push_back(metrics.completed(qos));
    snap.downgraded.push_back(metrics.downgraded(qos));
    snap.terminated.push_back(metrics.terminated(qos));
    snap.bytes_requested.push_back(metrics.bytes_requested(qos));
    snap.bytes_admitted.push_back(metrics.bytes_admitted(qos));
    snap.bytes_completed.push_back(metrics.bytes_completed(qos));
    snap.slo_eligible.push_back(metrics.slo_eligible(qos));
    snap.slo_met.push_back(metrics.slo_met(qos));
    const auto& rnl = metrics.rnl_by_run_qos(qos);
    snap.rnl_count.push_back(rnl.count());
    snap.rnl_p50.push_back(rnl.p50());
    snap.rnl_p99.push_back(rnl.p99());
    snap.rnl_p999.push_back(rnl.p999());
    snap.rnl_max.push_back(rnl.max());
    snap.rnl_mean.push_back(rnl.mean());
  }
  return snap;
}

void expect_identical(const MetricsSnapshot& serial,
                      const MetricsSnapshot& sharded, std::size_t shards) {
  const std::string label = " (shards=" + std::to_string(shards) + ")";
  EXPECT_EQ(serial.total_completed, sharded.total_completed) << label;
  ASSERT_EQ(serial.completed.size(), sharded.completed.size()) << label;
  for (std::size_t q = 0; q < serial.completed.size(); ++q) {
    const std::string at = "qos=" + std::to_string(q) + label;
    EXPECT_EQ(serial.completed[q], sharded.completed[q]) << at;
    EXPECT_EQ(serial.downgraded[q], sharded.downgraded[q]) << at;
    EXPECT_EQ(serial.terminated[q], sharded.terminated[q]) << at;
    EXPECT_EQ(serial.bytes_requested[q], sharded.bytes_requested[q]) << at;
    EXPECT_EQ(serial.bytes_admitted[q], sharded.bytes_admitted[q]) << at;
    EXPECT_EQ(serial.bytes_completed[q], sharded.bytes_completed[q]) << at;
    EXPECT_EQ(serial.slo_eligible[q], sharded.slo_eligible[q]) << at;
    EXPECT_EQ(serial.slo_met[q], sharded.slo_met[q]) << at;
    EXPECT_EQ(serial.rnl_count[q], sharded.rnl_count[q]) << at;
    // Same sample multiset => order statistics match bit for bit.
    EXPECT_EQ(serial.rnl_p50[q], sharded.rnl_p50[q]) << at;
    EXPECT_EQ(serial.rnl_p99[q], sharded.rnl_p99[q]) << at;
    EXPECT_EQ(serial.rnl_p999[q], sharded.rnl_p999[q]) << at;
    EXPECT_EQ(serial.rnl_max[q], sharded.rnl_max[q]) << at;
    // Summation order differs across the merge: ulp-scale tolerance.
    EXPECT_NEAR(serial.rnl_mean[q], sharded.rnl_mean[q],
                1e-12 * (1.0 + std::abs(serial.rnl_mean[q])))
        << at;
  }
}

runner::ExperimentConfig sharded_config(std::size_t shards,
                                        sim::SchedulerBackend backend,
                                        bool audit) {
  runner::ExperimentConfig config;
  config.scheduler_backend = backend;
  config.num_hosts = 8;
  config.num_qos = 3;
  config.enable_aequitas = true;
  config.slo = rpc::SloConfig::make(
      {2.0 * sim::kUsec, 10.0 * sim::kUsec, 0.0}, 99.0);
  config.shards = shards;
  config.audit = audit;
  config.seed = 42;
  return config;
}

struct RunResult {
  MetricsSnapshot metrics;
  std::uint64_t events = 0;
  std::uint64_t cross_shard = 0;
  std::uint64_t audit_passes = 0;
};

RunResult run_mixed_workload(std::size_t shards,
                             sim::SchedulerBackend backend, bool audit) {
  auto config = sharded_config(shards, backend, audit);
  runner::Experiment experiment(config);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(16 * sim::kKiB));
  // Aggregate offered load just above capacity so admission control has
  // real work (downgrades and SLO misses appear in the snapshot).
  for (std::size_t h = 0; h < config.num_hosts; ++h) {
    workload::GeneratorConfig gen;
    gen.classes = {
        {rpc::Priority::kPC, 0.5 * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kNC, 0.4 * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kBE, 0.3 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(static_cast<net::HostId>(h), gen);
  }
  experiment.run(0.5 * sim::kMsec, 1.5 * sim::kMsec, 1.0 * sim::kMsec);

  RunResult result;
  result.metrics = snapshot(experiment.metrics(), config.num_qos);
  result.events = experiment.events_processed();
  if (experiment.shard_fabric() != nullptr) {
    result.cross_shard = experiment.shard_fabric()->cross_shard_packets();
  }
  if (shards == 1) {
    if (experiment.auditor() != nullptr) {
      result.audit_passes = experiment.auditor()->passes();
    }
  } else {
    for (std::size_t k = 0; k < shards; ++k) {
      if (experiment.shard_auditor(k) != nullptr) {
        result.audit_passes += experiment.shard_auditor(k)->passes();
      }
    }
  }
  return result;
}

class ShardDeterminismTest
    : public ::testing::TestWithParam<sim::SchedulerBackend> {};

// The PR's defining constraint: same seed, any shard count, identical
// metrics — with auditing on and clean (a violated invariant aborts).
TEST_P(ShardDeterminismTest, SameSeedAnyShardCountSameMetrics) {
  const auto backend = GetParam();
  const RunResult serial = run_mixed_workload(1, backend, /*audit=*/true);
  ASSERT_GT(serial.metrics.total_completed, 500u);
  ASSERT_GT(serial.metrics.downgraded[0], 0u)
      << "workload too light to exercise admission control";
  ASSERT_GT(serial.audit_passes, 0u);

  for (std::size_t shards : {2u, 4u}) {
    const RunResult parallel = run_mixed_workload(shards, backend, true);
    expect_identical(serial.metrics, parallel.metrics, shards);
    EXPECT_GT(parallel.cross_shard, 0u)
        << "no cross-shard traffic: the test is not exercising the cut";
    EXPECT_GT(parallel.audit_passes, 0u) << "shards=" << shards;
  }
}

// With audit and telemetry off, the sharded executive dispatches exactly
// the serial event count: the handoff path costs one tx-end plus one
// arrival event per packet, like the serial two-event link pipeline.
TEST_P(ShardDeterminismTest, EventCountMatchesSerialWithAuditOff) {
  const auto backend = GetParam();
  const RunResult serial = run_mixed_workload(1, backend, /*audit=*/false);
  for (std::size_t shards : {2u, 4u}) {
    const RunResult parallel = run_mixed_workload(shards, backend, false);
    EXPECT_EQ(serial.events, parallel.events) << "shards=" << shards;
    expect_identical(serial.metrics, parallel.metrics, shards);
  }
}

// Reruns of the same sharded configuration are bit-stable (thread timing
// must not leak into the simulation).
TEST_P(ShardDeterminismTest, ShardedRunIsReproducible) {
  const auto backend = GetParam();
  const RunResult a = run_mixed_workload(2, backend, /*audit=*/false);
  const RunResult b = run_mixed_workload(2, backend, /*audit=*/false);
  expect_identical(a.metrics, b.metrics, 2);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.cross_shard, b.cross_shard);
}

INSTANTIATE_TEST_SUITE_P(
    BothBackends, ShardDeterminismTest,
    ::testing::Values(sim::SchedulerBackend::kHeap,
                      sim::SchedulerBackend::kCalendar),
    [](const ::testing::TestParamInfo<sim::SchedulerBackend>& param) {
      return param.param == sim::SchedulerBackend::kHeap ? "heap"
                                                         : "calendar";
    });

}  // namespace
}  // namespace aeq
