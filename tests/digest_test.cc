// Schedule-digest property suite (sim/digest.h, DESIGN.md §12).
//
// The digest is the executable form of the determinism contract: for a
// fixed seed its canonical fingerprint must be identical
//   * across repeated runs in one process,
//   * across the heap and calendar scheduler backends,
//   * across shard counts 1/2/4 (serial vs conservative-PDES executive),
// and must CHANGE when the seed changes. CI additionally diffs it across
// two processes with different address-space layouts (the ASLR smoke step);
// this file covers everything observable inside one process.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runner/experiment.h"
#include "sim/digest.h"
#include "workload/size_dist.h"

namespace aeq {
namespace {

// ---------------------------------------------------------------------------
// ScheduleDigest unit behavior
// ---------------------------------------------------------------------------

TEST(ScheduleDigest, OrderedFoldIsOrderSensitiveCanonicalIsNot) {
  sim::ScheduleDigest forward;
  forward.record(1.0, 3);
  forward.record(2.0, sim::kTieRankDefault);
  sim::ScheduleDigest backward;
  backward.record(2.0, sim::kTieRankDefault);
  backward.record(1.0, 3);
  EXPECT_NE(forward.ordered, backward.ordered);
  EXPECT_EQ(forward.canonical(), backward.canonical());
  EXPECT_EQ(forward.count, 2u);
}

TEST(ScheduleDigest, MergeMatchesSingleStreamCanonical) {
  // Splitting a stream across two digests and merging equals recording the
  // whole stream into one — the property the sharded merge relies on.
  sim::ScheduleDigest whole;
  sim::ScheduleDigest part_a;
  sim::ScheduleDigest part_b;
  for (int i = 0; i < 100; ++i) {
    const sim::Time t = 0.25 * i;
    const auto rank = static_cast<std::uint16_t>(i % 5);
    whole.record(t, rank);
    (i % 2 == 0 ? part_a : part_b).record(t, rank);
  }
  sim::ScheduleDigest merged;
  merged.merge(part_a);
  merged.merge(part_b);
  EXPECT_EQ(merged.canonical(), whole.canonical());
  EXPECT_EQ(merged.count, whole.count);
}

TEST(ScheduleDigest, RankChangesTheDigest) {
  sim::ScheduleDigest a;
  a.record(1.0, 0);
  sim::ScheduleDigest b;
  b.record(1.0, 1);
  EXPECT_NE(a.canonical(), b.canonical());
}

TEST(ScheduleDigest, HexIsSixteenLowercaseDigits) {
  sim::ScheduleDigest digest;
  digest.record(1.0, 0);
  const std::string hex = digest.hex();
  ASSERT_EQ(hex.size(), 16u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

// ---------------------------------------------------------------------------
// End-to-end properties over a real admission-control workload
// ---------------------------------------------------------------------------

// The end-to-end tests need the dispatch hook compiled in; skip (rather
// than fail the enable_schedule_digest assert) on AEQ_SCHED_DIGEST=OFF
// builds.
#define AEQ_REQUIRE_DIGEST_BUILD()                            \
  do {                                                        \
    if (!sim::kDigestBuildEnabled) {                          \
      GTEST_SKIP() << "built with AEQ_SCHED_DIGEST=OFF";      \
    }                                                         \
  } while (false)

struct DigestRun {
  std::uint64_t canonical = 0;
  std::uint64_t ordered = 0;
  std::uint64_t count = 0;
  std::uint64_t completed = 0;
};

DigestRun run_workload(std::size_t shards, sim::SchedulerBackend backend,
                       std::uint64_t seed, bool digest = true) {
  runner::ExperimentConfig config;
  config.scheduler_backend = backend;
  config.num_hosts = 8;
  config.num_qos = 3;
  config.enable_aequitas = true;
  config.slo = rpc::SloConfig::make(
      {2.0 * sim::kUsec, 10.0 * sim::kUsec, 0.0}, 99.0);
  config.shards = shards;
  // Audit ticks are per-executive events: a serial run schedules one audit
  // sweep where a K-shard run schedules K, so the dispatched-event streams
  // (and thus the digests) would legitimately differ. The digest contract
  // is over the simulation schedule, so pin auditing off explicitly
  // (AEQ_AUDIT CI builds flip the default on).
  config.audit = false;
  config.schedule_digest = digest;
  config.seed = seed;

  runner::Experiment experiment(config);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(16 * sim::kKiB));
  for (std::size_t h = 0; h < config.num_hosts; ++h) {
    workload::GeneratorConfig gen;
    gen.classes = {
        {rpc::Priority::kPC, 0.5 * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kNC, 0.4 * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kBE, 0.3 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(static_cast<net::HostId>(h), gen);
  }
  experiment.run(0.2 * sim::kMsec, 0.8 * sim::kMsec, 0.5 * sim::kMsec);

  const sim::ScheduleDigest d = experiment.schedule_digest();
  DigestRun result;
  result.canonical = d.canonical();
  result.ordered = d.ordered;
  result.count = d.count;
  result.completed = experiment.metrics().total_completed();
  return result;
}

TEST(ScheduleDigestRuns, SameSeedTwiceIsIdentical) {
  AEQ_REQUIRE_DIGEST_BUILD();
  const DigestRun a = run_workload(1, sim::SchedulerBackend::kCalendar, 42);
  const DigestRun b = run_workload(1, sim::SchedulerBackend::kCalendar, 42);
  ASSERT_GT(a.count, 10000u) << "workload too light to mean anything";
  EXPECT_EQ(a.ordered, b.ordered);
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.count, b.count);
}

TEST(ScheduleDigestRuns, HeapAndCalendarDispatchTheSameSchedule) {
  AEQ_REQUIRE_DIGEST_BUILD();
  const DigestRun heap = run_workload(1, sim::SchedulerBackend::kHeap, 42);
  const DigestRun cal =
      run_workload(1, sim::SchedulerBackend::kCalendar, 42);
  // Serial runs share a global dispatch order, so even the order-sensitive
  // fold must match across backends.
  EXPECT_EQ(heap.ordered, cal.ordered);
  EXPECT_EQ(heap.canonical, cal.canonical);
  EXPECT_EQ(heap.count, cal.count);
}

class ShardDigestTest
    : public ::testing::TestWithParam<sim::SchedulerBackend> {};

TEST_P(ShardDigestTest, ShardCountsOneTwoFourAgree) {
  AEQ_REQUIRE_DIGEST_BUILD();
  const auto backend = GetParam();
  const DigestRun serial = run_workload(1, backend, 42);
  ASSERT_GT(serial.count, 10000u);
  for (std::size_t shards : {2u, 4u}) {
    const DigestRun sharded = run_workload(shards, backend, 42);
    EXPECT_EQ(sharded.canonical, serial.canonical) << shards << " shards";
    EXPECT_EQ(sharded.count, serial.count) << shards << " shards";
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ShardDigestTest,
                         ::testing::Values(sim::SchedulerBackend::kHeap,
                                           sim::SchedulerBackend::kCalendar),
                         [](const auto& param_info) {
                           return std::string(
                               sim::backend_name(param_info.param));
                         });

TEST(ScheduleDigestRuns, DifferentSeedDiffers) {
  AEQ_REQUIRE_DIGEST_BUILD();
  const DigestRun a = run_workload(1, sim::SchedulerBackend::kCalendar, 42);
  const DigestRun b = run_workload(1, sim::SchedulerBackend::kCalendar, 43);
  EXPECT_NE(a.canonical, b.canonical);
}

TEST(ScheduleDigestRuns, DigestDoesNotPerturbTheRun) {
  AEQ_REQUIRE_DIGEST_BUILD();
  const DigestRun with = run_workload(1, sim::SchedulerBackend::kCalendar,
                                      42, /*digest=*/true);
  const DigestRun without = run_workload(1, sim::SchedulerBackend::kCalendar,
                                         42, /*digest=*/false);
  EXPECT_EQ(with.completed, without.completed);
  EXPECT_EQ(without.count, 0u);  // off means off: nothing accumulated
}

}  // namespace
}  // namespace aeq
