// Tests for the unified observability layer (src/obs/): recorder fan-out
// and port registration, sink aggregation, golden-file output of the Chrome
// and CSV sinks, end-to-end reconciliation of trace counters against
// RpcMetrics, and the property the whole design hangs on — running with
// tracing enabled leaves every simulation result bit-identical.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace_sink.h"
#include "obs/counter_sink.h"
#include "obs/csv_sink.h"
#include "obs/recorder.h"
#include "runner/experiment.h"

namespace aeq {
namespace {

// Sink stub that appends one tagged line per callback to a shared log, so
// tests can assert both delivery and fan-out order.
class LogSink : public obs::Sink {
 public:
  LogSink(std::string tag, std::vector<std::string>* log,
          bool* destroyed = nullptr)
      : tag_(std::move(tag)), log_(log), destroyed_(destroyed) {}
  ~LogSink() override {
    if (destroyed_ != nullptr) *destroyed_ = true;
  }

  void on_port_registered(std::uint32_t port,
                          const std::string& name) override {
    log_->push_back(tag_ + ":port" + std::to_string(port) + ":" + name);
  }
  void on_rpc_generated(const obs::RpcGenerated&) override {
    log_->push_back(tag_ + ":generated");
  }
  void on_admission(const obs::AdmissionDecision&) override {
    log_->push_back(tag_ + ":admission");
  }
  void on_packet(const obs::PacketEvent&) override {
    log_->push_back(tag_ + ":packet");
  }
  void on_cwnd(const obs::CwndUpdate&) override {
    log_->push_back(tag_ + ":cwnd");
  }
  void on_rpc_complete(const obs::RpcComplete&) override {
    log_->push_back(tag_ + ":complete");
  }
  void flush(sim::Time) override { log_->push_back(tag_ + ":flush"); }

 private:
  std::string tag_;
  std::vector<std::string>* log_;
  bool* destroyed_;
};

// The fixed little event sequence the golden-file tests replay: one RPC's
// full lifecycle (generated -> downgraded -> one packet enqueued, one
// dropped -> cwnd move -> completion missing its SLO) on registered port 0.
void replay_lifecycle(obs::Recorder& recorder) {
  recorder.register_port("sw0-port0");

  obs::RpcGenerated generated;
  generated.t = 1.5 * sim::kUsec;
  generated.rpc_id = 7;
  generated.src = 0;
  generated.dst = 1;
  generated.qos_requested = 0;
  generated.bytes = 1000;
  recorder.rpc_generated(generated);

  obs::AdmissionDecision admission;
  admission.t = 2.0 * sim::kUsec;
  admission.rpc_id = 7;
  admission.src = 0;
  admission.dst = 1;
  admission.qos_from = 0;
  admission.qos_to = 1;
  admission.p_admit = 0.75;
  admission.downgraded = true;
  recorder.admission(admission);

  obs::PacketEvent enqueue;
  enqueue.t = 2.5 * sim::kUsec;
  enqueue.kind = obs::PacketEventKind::kEnqueue;
  enqueue.port = 0;
  enqueue.qos = 1;
  enqueue.bytes = 500;
  enqueue.qlen_bytes = 500;
  enqueue.qlen_packets = 1;
  recorder.packet(enqueue);

  obs::PacketEvent drop;
  drop.t = 3.0 * sim::kUsec;
  drop.kind = obs::PacketEventKind::kDrop;
  drop.port = 0;
  drop.qos = 1;
  drop.bytes = 500;
  drop.qlen_bytes = 500;
  drop.qlen_packets = 1;
  recorder.packet(drop);

  obs::CwndUpdate cwnd;
  cwnd.t = 4.0 * sim::kUsec;
  cwnd.src = 0;
  cwnd.dst = 1;
  cwnd.qos = 1;
  cwnd.cwnd_packets = 8.0;
  recorder.cwnd(cwnd);

  obs::RpcComplete complete;
  complete.t = 9.0 * sim::kUsec;
  complete.rpc_id = 7;
  complete.src = 0;
  complete.dst = 1;
  complete.qos_requested = 0;
  complete.qos_run = 1;
  complete.bytes = 1000;
  complete.rnl = 4.0 * sim::kUsec;
  complete.slo_met = false;
  complete.downgraded = true;
  recorder.rpc_complete(complete);

  recorder.flush(10.0 * sim::kUsec);
}

TEST(RecorderTest, FansOutToSinksInRegistrationOrder) {
  std::vector<std::string> log;
  LogSink first("a", &log);
  LogSink second("b", &log);
  obs::Recorder recorder;
  recorder.add_sink(&first);
  recorder.add_sink(&second);
  EXPECT_EQ(recorder.sink_count(), 2u);

  replay_lifecycle(recorder);

  const std::vector<std::string> expected = {
      "a:port0:sw0-port0", "b:port0:sw0-port0",
      "a:generated",       "b:generated",
      "a:admission",       "b:admission",
      "a:packet",          "b:packet",
      "a:packet",          "b:packet",
      "a:cwnd",            "b:cwnd",
      "a:complete",        "b:complete",
      "a:flush",           "b:flush",
  };
  EXPECT_EQ(log, expected);
}

TEST(RecorderTest, OwnSinkIsDeliveredToAndDestroyedWithRecorder) {
  std::vector<std::string> log;
  bool destroyed = false;
  {
    obs::Recorder recorder;
    obs::Sink* raw = recorder.own_sink(
        std::make_unique<LogSink>("owned", &log, &destroyed));
    ASSERT_NE(raw, nullptr);
    EXPECT_EQ(recorder.sink_count(), 1u);
    obs::RpcGenerated generated;
    recorder.rpc_generated(generated);
    EXPECT_FALSE(destroyed);
  }
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(log, std::vector<std::string>{"owned:generated"});
}

TEST(RecorderTest, RegisterPortAssignsDenseIdsAndAnnouncesNames) {
  std::vector<std::string> log;
  LogSink sink("s", &log);
  obs::Recorder recorder;
  recorder.add_sink(&sink);
  EXPECT_EQ(recorder.port_count(), 0u);
  EXPECT_EQ(recorder.register_port("host0-nic"), 0u);
  EXPECT_EQ(recorder.register_port("host1-nic"), 1u);
  EXPECT_EQ(recorder.register_port("tor-port0"), 2u);
  EXPECT_EQ(recorder.port_count(), 3u);
  EXPECT_EQ(recorder.port_name(0), "host0-nic");
  EXPECT_EQ(recorder.port_name(2), "tor-port0");
  const std::vector<std::string> expected = {
      "s:port0:host0-nic", "s:port1:host1-nic", "s:port2:tor-port0"};
  EXPECT_EQ(log, expected);
}

// Regression test: a sink attached after ports were registered must still
// learn their names. The flight recorder and timeseries sink are wired in
// enable_telemetry after the experiment's constructor has already named
// every port, so add_sink replays the registry to late sinks.
TEST(RecorderTest, LateSinkReceivesPortReplay) {
  obs::Recorder recorder;
  EXPECT_EQ(recorder.register_port("host0-nic"), 0u);
  EXPECT_EQ(recorder.register_port("tor-port0"), 1u);

  std::vector<std::string> log;
  LogSink late("late", &log);
  recorder.add_sink(&late);
  const std::vector<std::string> expected = {"late:port0:host0-nic",
                                             "late:port1:tor-port0"};
  EXPECT_EQ(log, expected);

  // New registrations still arrive live, exactly once.
  recorder.register_port("tor-port1");
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.back(), "late:port2:tor-port1");
}

TEST(CounterSinkTest, AggregatesTheLifecycle) {
  obs::CounterSink counters;
  obs::Recorder recorder;
  recorder.add_sink(&counters);
  replay_lifecycle(recorder);

  EXPECT_EQ(counters.rpcs_generated(), 1u);
  EXPECT_EQ(counters.rpcs_completed(), 1u);
  EXPECT_EQ(counters.rpcs_terminated(), 0u);
  EXPECT_EQ(counters.admitted(), 0u);
  EXPECT_EQ(counters.downgraded(), 1u);
  EXPECT_EQ(counters.admission_dropped(), 0u);
  EXPECT_EQ(counters.slo_met(), 0u);
  EXPECT_EQ(counters.cwnd_updates(), 1u);
  EXPECT_EQ(counters.packets_enqueued(1), 1u);
  EXPECT_EQ(counters.packets_dequeued(1), 0u);
  EXPECT_EQ(counters.packets_dropped(1), 1u);
  EXPECT_EQ(counters.packets_enqueued(0), 0u);
  EXPECT_EQ(counters.total_packets_dropped(), 1u);
  EXPECT_DOUBLE_EQ(counters.mean_p_admit(), 0.75);
  // The lifecycle's one RPC completed (1000 payload bytes) but missed its
  // SLO; nothing was terminated.
  EXPECT_EQ(counters.bytes_completed(), 1000u);
  EXPECT_EQ(counters.bytes_terminated(), 0u);
  EXPECT_DOUBLE_EQ(counters.slo_compliance(), 0.0);
  EXPECT_DOUBLE_EQ(obs::CounterSink().slo_compliance(), 1.0);
  // Rendering must not crash and must carry at least the scalar counters.
  EXPECT_GE(counters.to_table().num_rows(), 8u);
}

TEST(CounterSinkTest, MeanPAdmitAveragesDecisionsAndDefaultsToOne) {
  obs::CounterSink counters;
  EXPECT_DOUBLE_EQ(counters.mean_p_admit(), 1.0);
  obs::AdmissionDecision decision;
  decision.p_admit = 0.5;
  counters.on_admission(decision);
  decision.p_admit = 1.0;
  decision.downgraded = false;
  counters.on_admission(decision);
  EXPECT_DOUBLE_EQ(counters.mean_p_admit(), 0.75);
  EXPECT_EQ(counters.admitted(), 2u);
}

// Golden-file test: the exact bytes the Chrome sink emits for the fixed
// lifecycle. Deliberately brittle — the trace format is an interchange
// format (chrome://tracing, Perfetto), so any change to it should be a
// conscious one that updates this expectation.
TEST(ChromeTraceSinkTest, GoldenLifecycleTrace) {
  std::ostringstream stream;
  obs::ChromeTraceSink sink(&stream);
  obs::Recorder recorder;
  recorder.add_sink(&sink);
  replay_lifecycle(recorder);

  const std::vector<std::string> events = {
      R"({"ph":"M","name":"process_name","pid":10000,"tid":0,)"
      R"("args":{"name":"sw0-port0"}})",
      R"({"ph":"M","name":"process_name","pid":0,"tid":0,)"
      R"("args":{"name":"host 0"}})",
      R"({"ph":"i","name":"rpc_generated","cat":"rpc","s":"t","ts":1.500,)"
      R"("pid":0,"tid":0,"args":{"rpc_id":7,"dst":1,"bytes":1000}})",
      R"({"ph":"i","name":"downgrade","cat":"admission","s":"t","ts":2.000,)"
      R"("pid":0,"tid":0,"args":{"rpc_id":7,"dst":1,"qos_to":1,)"
      R"("p_admit":0.75}})",
      R"({"ph":"C","name":"qlen","cat":"net","ts":2.500,"pid":10000,)"
      R"("args":{"bytes":500,"packets":1}})",
      R"({"ph":"i","name":"packet_drop","cat":"net","s":"p","ts":3.000,)"
      R"("pid":10000,"tid":1,"args":{"bytes":500}})",
      R"({"ph":"C","name":"cwnd dst1 q1","cat":"transport","ts":4.000,)"
      R"("pid":0,"args":{"packets":8}})",
      R"({"ph":"X","name":"rpc","cat":"rpc","ts":5.000,"dur":4.000,)"
      R"("pid":0,"tid":1,"args":{"rpc_id":7,"dst":1,"bytes":1000,)"
      R"("qos_requested":0,"slo_met":false,"downgraded":true}})",
  };
  std::string expected = R"({"displayTimeUnit":"ms","traceEvents":[)";
  for (std::size_t i = 0; i < events.size(); ++i) {
    expected += (i == 0 ? "\n" : ",\n") + events[i];
  }
  expected += "\n]}\n";

  EXPECT_EQ(stream.str(), expected);
  EXPECT_EQ(sink.events_written(), events.size());
}

TEST(ChromeTraceSinkTest, FlushIsIdempotentAndStopsFurtherWrites) {
  std::ostringstream stream;
  obs::ChromeTraceSink sink(&stream);
  sink.flush(0.0);
  const std::string closed = stream.str();
  sink.flush(1.0);
  obs::RpcGenerated generated;
  sink.on_rpc_generated(generated);
  EXPECT_EQ(stream.str(), closed);
  EXPECT_EQ(sink.events_written(), 0u);
}

TEST(CsvSinkTest, GoldenLifecycleRows) {
  std::ostringstream stream;
  obs::CsvSink sink(&stream);
  obs::Recorder recorder;
  recorder.add_sink(&sink);
  replay_lifecycle(recorder);

  const std::string expected =
      "time_us,event,host,peer,port,qos,rpc_id,bytes,value,detail\n"
      "1.500,rpc_generated,0,1,,0,7,1000,,\n"
      "2.000,admission,0,1,,1,7,,0.75,downgrade\n"
      "2.500,packet,,,0,1,,500,500,enqueue\n"
      "3.000,packet,,,0,1,,500,500,drop\n"
      "4.000,cwnd,0,1,,1,,,8,\n"
      "9.000,rpc_complete,0,1,,1,7,1000,4.000,slo_miss\n";
  EXPECT_EQ(stream.str(), expected);
  EXPECT_EQ(sink.rows_written(), 6u);
}

// --- experiment-level wiring ----------------------------------------------

runner::ExperimentConfig traced_config(net::SchedulerType scheduler,
                                       sim::SchedulerBackend backend) {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  config.scheduler = scheduler;
  config.scheduler_backend = backend;
  config.enable_aequitas = true;
  config.buffer_bytes = 256 * 1024;  // small enough to exercise drops
  config.slo = rpc::SloConfig::make({15.0 / 8 * sim::kUsec, 0.0}, 99.9);
  config.audit = false;
  return config;
}

void attach_overload(runner::Experiment& experiment) {
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  workload::GeneratorConfig gen;
  gen.classes = {{rpc::Priority::kPC, 0.6 * sim::gbps(100), sizes, 0.0},
                 {rpc::Priority::kBE, 0.5 * sim::gbps(100), sizes, 0.0}};
  experiment.add_generator(0, gen, workload::fixed_destination(2));
  experiment.add_generator(1, gen, workload::fixed_destination(2));
}

struct Outcome {
  std::uint64_t completed = 0;
  std::vector<double> p999;
  std::vector<double> share;
};

Outcome run_once(net::SchedulerType scheduler, sim::SchedulerBackend backend,
                 const std::string& trace_path) {
  auto config = traced_config(scheduler, backend);
  config.trace = trace_path;  // empty = tracing off
  runner::Experiment experiment(config);
  EXPECT_EQ(experiment.tracing() != nullptr, !trace_path.empty());
  attach_overload(experiment);
  experiment.run(0.0, 3 * sim::kMsec);
  Outcome outcome;
  outcome.completed = experiment.metrics().total_completed();
  for (net::QoSLevel qos = 0; qos < 2; ++qos) {
    outcome.p999.push_back(experiment.metrics().rnl_by_run_qos(qos).p999());
    outcome.share.push_back(experiment.metrics().admitted_share(qos));
  }
  return outcome;
}

// The central promise of the API: attaching a recorder observes the run
// without perturbing it. Every discipline on both scheduler backends must
// produce bit-identical metrics with tracing on and off.
TEST(TracingIdentityTest, TracedRunIsBitIdenticalAcrossDisciplines) {
  const net::SchedulerType disciplines[] = {
      net::SchedulerType::kFifo, net::SchedulerType::kWfq,
      net::SchedulerType::kDwrr, net::SchedulerType::kSpq,
      net::SchedulerType::kPfabric};
  const sim::SchedulerBackend backends[] = {sim::SchedulerBackend::kHeap,
                                            sim::SchedulerBackend::kCalendar};
  int variant = 0;
  for (const auto scheduler : disciplines) {
    for (const auto backend : backends) {
      SCOPED_TRACE(variant);
      const std::string path = ::testing::TempDir() + "obs_identity_" +
                               std::to_string(variant++) + ".json";
      const Outcome untraced = run_once(scheduler, backend, "");
      const Outcome traced = run_once(scheduler, backend, path);
      EXPECT_GT(untraced.completed, 0u);
      EXPECT_EQ(untraced.completed, traced.completed);
      for (std::size_t qos = 0; qos < 2; ++qos) {
        // Bitwise equality, not near-equality: tracing must not reorder a
        // single event or perturb one RNG draw.
        EXPECT_EQ(untraced.p999[qos], traced.p999[qos]);
        EXPECT_EQ(untraced.share[qos], traced.share[qos]);
      }
      std::remove(path.c_str());
    }
  }
}

// End-to-end reconciliation: counters observed through the recorder must
// agree with what RpcMetrics accounted for the same run, and the emitted
// Chrome JSON must be a closed document.
TEST(TracingIdentityTest, TraceCountersReconcileWithMetrics) {
  const std::string path = ::testing::TempDir() + "obs_reconcile.json";
  auto config = traced_config(net::SchedulerType::kWfq,
                              sim::SchedulerBackend::kCalendar);
  runner::Experiment experiment(config);
  EXPECT_EQ(experiment.tracing(), nullptr);
  const std::string csv_path = ::testing::TempDir() + "obs_reconcile.csv";
  experiment.trace_to(path, csv_path);
  ASSERT_NE(experiment.tracing(), nullptr);
  obs::CounterSink counters;
  experiment.tracing()->add_sink(&counters);
  attach_overload(experiment);
  experiment.run(0.0, 2 * sim::kMsec);

  const auto& metrics = experiment.metrics();
  // Every generated RPC got exactly one admission verdict.
  EXPECT_EQ(counters.rpcs_generated(), counters.admitted() +
                                           counters.downgraded() +
                                           counters.admission_dropped());
  // The overload outlives the capped drain window, so some RPCs are still
  // in flight at the end — but nothing completes that was never generated.
  EXPECT_GE(counters.rpcs_generated(),
            counters.rpcs_completed() + counters.rpcs_terminated());
  // Completions are counted identically by the trace and by RpcMetrics.
  EXPECT_EQ(counters.rpcs_completed(), metrics.total_completed());
  std::uint64_t slo_met = 0, downgraded = 0, delivered_downgraded = 0;
  for (net::QoSLevel qos = 0; qos < 2; ++qos) {
    slo_met += metrics.slo_met(qos);
    downgraded += metrics.downgraded(qos);
    delivered_downgraded += metrics.downgraded_delivered(qos);
  }
  EXPECT_EQ(counters.slo_met(), slo_met);
  // Completed payload bytes agree exactly with the metrics' delivered-QoS
  // accounting; terminated bytes are kept apart and never pollute them.
  std::uint64_t bytes_completed = 0;
  for (net::QoSLevel qos = 0; qos < 2; ++qos) {
    bytes_completed += metrics.bytes_completed(qos);
  }
  EXPECT_EQ(counters.bytes_completed(), bytes_completed);
  EXPECT_GT(counters.bytes_completed(), 0u);
  EXPECT_DOUBLE_EQ(
      counters.slo_compliance(),
      static_cast<double>(slo_met) /
          static_cast<double>(metrics.total_completed()));
  // The trace counts downgrade *decisions*; metrics count downgraded RPCs
  // that completed. Decisions bound completions, and the two metrics views
  // (by requested vs by delivered QoS) must agree with each other exactly.
  EXPECT_GE(counters.downgraded(), downgraded);
  EXPECT_EQ(downgraded, delivered_downgraded);
  EXPECT_GT(counters.downgraded(), 0u);  // the workload overloads host 2
  EXPECT_GT(counters.cwnd_updates(), 0u);
  // Per class: a drop event is a *rejected arrival* (no matching enqueue),
  // and dequeues never exceed enqueues — the residue is the backlog still
  // queued when the drain window closed.
  for (net::QoSLevel qos = 0; qos < 2; ++qos) {
    EXPECT_GE(counters.packets_enqueued(qos), counters.packets_dequeued(qos));
  }
  EXPECT_GT(counters.total_packets_dropped(), 0u);  // 256KB buffers drop
  EXPECT_GE(counters.mean_p_admit(), 0.0);
  EXPECT_LE(counters.mean_p_admit(), 1.0);

  // The streamed JSON document is closed by the final flush.
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string trace = buffer.str();
  EXPECT_EQ(trace.rfind(R"({"displayTimeUnit":"ms","traceEvents":[)", 0), 0u);
  ASSERT_GE(trace.size(), 4u);
  EXPECT_EQ(trace.substr(trace.size() - 4), "\n]}\n");
  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.is_open());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header,
            "time_us,event,host,peer,port,qos,rpc_id,bytes,value,detail");
  std::remove(path.c_str());
  std::remove(csv_path.c_str());
}

TEST(TracingIdentityTest, TraceToTwiceDies) {
  auto config = traced_config(net::SchedulerType::kWfq,
                              sim::SchedulerBackend::kHeap);
  runner::Experiment experiment(config);
  experiment.trace_to(::testing::TempDir() + "obs_twice.json");
  EXPECT_DEATH(
      experiment.trace_to(::testing::TempDir() + "obs_twice_again.json"),
      "already enabled");
}

// --- legacy config alias (ExperimentConfig::use_fixed_window) -------------

TEST(FixedWindowAliasTest, ConflictingCcKindDies) {
  auto config = traced_config(net::SchedulerType::kWfq,
                              sim::SchedulerBackend::kHeap);
  config.use_fixed_window = true;
  config.cc_kind = runner::ExperimentConfig::CcKind::kDctcp;
  EXPECT_DEATH(runner::Experiment experiment(config), "use_fixed_window");
}

TEST(FixedWindowAliasTest, LegacyFlagStillSelectsFixedWindow) {
  auto config = traced_config(net::SchedulerType::kWfq,
                              sim::SchedulerBackend::kHeap);
  config.use_fixed_window = true;  // cc_kind left at the kSwift default
  runner::Experiment experiment(config);
  attach_overload(experiment);
  experiment.run(0.0, 1 * sim::kMsec);
  EXPECT_GT(experiment.metrics().total_completed(), 0u);
}

}  // namespace
}  // namespace aeq
