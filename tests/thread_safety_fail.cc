// Negative fixture for the thread-safety annotations (DESIGN.md §12): this
// translation unit reads and writes a guarded member without holding its
// mutex, so compiling it with clang -Wthread-safety -Werror=thread-safety
// MUST fail. It is registered as a WILL_FAIL syntax-only ctest entry when
// AEQ_THREAD_SAFETY is on under clang — if it ever starts compiling, the
// annotation macros have gone inert and the analysis is no longer guarding
// the lock protocol.
//
// It is also a valid C++ program (gcc compiles it, annotations expand to
// nothing), so the fixture itself cannot rot into a syntax error.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Pool {
  aeq::util::Mutex mutex;
  int pending AEQ_GUARDED_BY(mutex) = 0;
};

int read_unlocked(Pool& pool) {
  return pool.pending;  // BAD: guarded read without the capability
}

void write_unlocked(Pool& pool) {
  pool.pending = 7;  // BAD: guarded write without the capability
}

}  // namespace

int main() {
  Pool pool;
  write_unlocked(pool);
  return read_unlocked(pool);
}
