// Unit and model-based tests for the src/util containers: the hot-path
// building blocks (RingBuffer, FlatMap64, InlineFunction) and the
// cross-shard SPSC channel. These types back the event loop and the
// PDES mailboxes, so their edge cases (wraparound, backward-shift erase,
// capacity budget, ring full/empty) get direct coverage here in addition
// to the allocation/bit-identity suites that exercise them indirectly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/rng.h"
#include "util/flat_map.h"
#include "util/inline_function.h"
#include "util/ring_buffer.h"
#include "util/spsc_channel.h"

namespace aeq {
namespace {

// ---------------------------------------------------------------------------
// util::RingBuffer
// ---------------------------------------------------------------------------

TEST(RingBufferTest, FifoAcrossWraparound) {
  util::RingBuffer<int> ring;
  // Interleave pushes and pops so head_ laps the storage several times.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 5; ++i) ring.push_back(next_in++);
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(ring.front(), next_out++);
      ring.pop_front();
    }
  }
  // 100 rounds x (5 in - 4 out) leaves 100 elements, oldest first.
  EXPECT_EQ(ring.size(), 100u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i], next_out + static_cast<int>(i));
  }
  EXPECT_EQ(ring.back(), next_in - 1);
}

TEST(RingBufferTest, GrowthPreservesOrderWhenWrapped) {
  util::RingBuffer<int> ring;
  // Fill past the minimum capacity, drain half, refill until growth
  // happens with head_ in the middle of the storage.
  for (int i = 0; i < 8; ++i) ring.push_back(i);
  for (int i = 0; i < 4; ++i) ring.pop_front();
  for (int i = 8; i < 40; ++i) ring.push_back(i);
  ASSERT_EQ(ring.size(), 36u);
  for (int i = 0; i < 36; ++i) {
    EXPECT_EQ(ring.front(), i + 4);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingBufferTest, ReserveRoundsUpAndKeepsContents) {
  util::RingBuffer<std::string> ring;
  ring.push_back("a");
  ring.push_back("b");
  ring.reserve(100);  // rounds to a power of two >= 100
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.front(), "a");
  EXPECT_EQ(ring.back(), "b");
  // After the reserve, 100 pushes must not disturb FIFO order.
  for (int i = 0; i < 100; ++i) ring.push_back(std::to_string(i));
  ring.pop_front();
  ring.pop_front();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(ring.front(), std::to_string(i));
    ring.pop_front();
  }
}

TEST(RingBufferTest, ClearReleasesSlotsAndResets) {
  util::RingBuffer<std::shared_ptr<int>> ring;
  auto tracked = std::make_shared<int>(7);
  ring.push_back(tracked);
  ring.push_back(tracked);
  EXPECT_EQ(tracked.use_count(), 3);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(tracked.use_count(), 1);  // slots really released their refs
  ring.push_back(tracked);
  EXPECT_EQ(*ring.front(), 7);
}

TEST(RingBufferTest, PopFrontReleasesSlotResource) {
  util::RingBuffer<std::shared_ptr<int>> ring;
  auto tracked = std::make_shared<int>(1);
  ring.push_back(tracked);
  ring.pop_front();
  EXPECT_EQ(tracked.use_count(), 1);
}

// ---------------------------------------------------------------------------
// util::FlatMap64
// ---------------------------------------------------------------------------

TEST(FlatMapTest, InsertFindEraseBasics) {
  util::FlatMap64<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(0), nullptr);
  map[0] = 10;  // key 0 is a legal key (packed (dst=0,qos=0))
  map[7] = 70;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(0), nullptr);
  EXPECT_EQ(*map.find(0), 10);
  EXPECT_TRUE(map.contains(7));
  EXPECT_FALSE(map.contains(8));
  EXPECT_TRUE(map.erase(0));
  EXPECT_FALSE(map.erase(0));
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, PackedSequentialKeysSurviveChurn) {
  // Packed channel keys are sequential in the low bits — the adversarial
  // shape for the probe chains. Insert a dense block, erase every third
  // key (backward-shift must repair chains), and verify the rest.
  util::FlatMap64<std::uint64_t> map;
  constexpr std::uint64_t kKeys = 300;
  for (std::uint64_t k = 0; k < kKeys; ++k) map[k] = k * 11;
  for (std::uint64_t k = 0; k < kKeys; k += 3) EXPECT_TRUE(map.erase(k));
  EXPECT_EQ(map.size(), kKeys - 100);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (k % 3 == 0) {
      EXPECT_FALSE(map.contains(k)) << k;
    } else {
      ASSERT_NE(map.find(k), nullptr) << k;
      EXPECT_EQ(*map.find(k), k * 11) << k;
    }
  }
}

TEST(FlatMapTest, RehashPreservesEntries) {
  util::FlatMap64<int> map;
  // Min capacity is 16 with a 7/8 load factor: 1000 inserts force
  // several rehashes.
  for (std::uint64_t k = 0; k < 1000; ++k) {
    map[k * 0x10001ULL] = static_cast<int>(k);
  }
  EXPECT_EQ(map.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(map.find(k * 0x10001ULL), nullptr) << k;
    EXPECT_EQ(*map.find(k * 0x10001ULL), static_cast<int>(k));
  }
}

TEST(FlatMapTest, ReservePreventsGrowthMidUse) {
  util::FlatMap64<int> map;
  map.reserve(64);
  for (std::uint64_t k = 0; k < 64; ++k) map[k] = 1;
  EXPECT_EQ(map.size(), 64u);
  std::uint64_t visited = 0;
  std::uint64_t key_sum = 0;
  // Unit test of for_each itself; commutative count/sum assertions.
  // detlint:allow(unordered-iter)
  map.for_each([&](std::uint64_t key, int value) {
    ++visited;
    key_sum += key;
    EXPECT_EQ(value, 1);
  });
  EXPECT_EQ(visited, 64u);
  EXPECT_EQ(key_sum, 63u * 64u / 2);
}

TEST(FlatMapTest, MatchesUnorderedMapUnderRandomOps) {
  // Model-based check: random insert/erase/lookup churn against the
  // reference map, heavy on erases to stress backward-shift deletion.
  util::FlatMap64<std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  sim::Rng rng(2024);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.index(512);  // small space => collisions
    const double action = rng.uniform();
    if (action < 0.5) {
      const std::uint64_t value = rng.index(1u << 30);
      map[key] = value;
      reference[key] = value;
    } else if (action < 0.8) {
      EXPECT_EQ(map.erase(key), reference.erase(key) > 0) << "op " << op;
    } else {
      const auto it = reference.find(key);
      const auto* found = map.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(found, nullptr) << "op " << op;
      } else {
        ASSERT_NE(found, nullptr) << "op " << op;
        EXPECT_EQ(*found, it->second) << "op " << op;
      }
    }
    ASSERT_EQ(map.size(), reference.size());
  }
  // Full sweep at the end: for_each sees exactly the reference contents.
  std::size_t visited = 0;
  // Model-based containment check; visit order is irrelevant.
  // detlint:allow(unordered-iter)
  map.for_each([&](std::uint64_t key, std::uint64_t value) {
    ++visited;
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatMapTest, ClearKeepsCapacityUsable) {
  util::FlatMap64<int> map;
  for (std::uint64_t k = 0; k < 100; ++k) map[k] = 1;
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(5));
  map[5] = 55;
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find(5), 55);
}

// ---------------------------------------------------------------------------
// util::InlineFunction
// ---------------------------------------------------------------------------

TEST(InlineFunctionTest, InvokesAndReportsEngagement) {
  util::InlineFunction<int(int), 48> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_TRUE(fn == nullptr);
  int base = 40;
  fn = [&base](int x) { return base + x; };
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(2), 42);
  fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunctionTest, MovePreservesNonTrivialCapture) {
  // unique_ptr capture: non-trivially-relocatable, so the move must go
  // through the manage thunk (move-construct + destroy source).
  auto owned = std::make_unique<int>(99);
  util::InlineFunction<int(), 48> fn =
      [p = std::move(owned)]() { return *p; };
  util::InlineFunction<int(), 48> moved(std::move(fn));
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(moved));
  EXPECT_EQ(moved(), 99);

  util::InlineFunction<int(), 48> assigned;
  assigned = std::move(moved);
  ASSERT_TRUE(static_cast<bool>(assigned));
  EXPECT_EQ(assigned(), 99);
}

TEST(InlineFunctionTest, MoveAssignmentReleasesPreviousCallable) {
  auto first = std::make_shared<int>(1);
  auto second = std::make_shared<int>(2);
  util::InlineFunction<int(), 48> fn = [p = first]() { return *p; };
  EXPECT_EQ(first.use_count(), 2);
  fn = util::InlineFunction<int(), 48>([p = second]() { return *p; });
  EXPECT_EQ(first.use_count(), 1);  // old capture destroyed
  EXPECT_EQ(second.use_count(), 2);
  EXPECT_EQ(fn(), 2);
  fn.reset();
  EXPECT_EQ(second.use_count(), 1);
}

TEST(InlineFunctionTest, TriviallyRelocatableCaptureMovesByMemcpy) {
  // Pointer + scalar captures (the event-loop common case) stay callable
  // across a chain of moves.
  int target = 0;
  util::InlineFunction<void(), 48> fn = [&target] { ++target; };
  util::InlineFunction<void(), 48> a(std::move(fn));
  util::InlineFunction<void(), 48> b(std::move(a));
  b();
  EXPECT_EQ(target, 1);
}

TEST(InlineFunctionTest, CaptureAtExactBudgetFits) {
  // The event scheduler's contract is a 48-byte budget; a capture of
  // exactly 48 bytes must compile and run (49 would be a compile error,
  // which is the documented failure mode — not testable at runtime).
  struct Exactly48 {
    std::uint64_t words[6];
  };
  static_assert(sizeof(Exactly48) == 48);
  Exactly48 payload{};
  payload.words[5] = 77;
  util::InlineFunction<std::uint64_t(), 48> fn =
      [payload]() { return payload.words[5]; };
  static_assert(sizeof(payload) <= 48);
  EXPECT_EQ(fn(), 77u);
}

// ---------------------------------------------------------------------------
// util::SpscChannel
// ---------------------------------------------------------------------------

TEST(SpscChannelTest, CapacityRoundsUpToPowerOfTwo) {
  util::SpscChannel<int> tiny(2);
  EXPECT_EQ(tiny.capacity(), 2u);
  util::SpscChannel<int> odd(5);
  EXPECT_EQ(odd.capacity(), 8u);
  util::SpscChannel<int> exact(64);
  EXPECT_EQ(exact.capacity(), 64u);
}

TEST(SpscChannelTest, FifoAndFullEmptyAcrossWraparound) {
  util::SpscChannel<int> channel(4);
  int out = -1;
  EXPECT_TRUE(channel.empty());
  EXPECT_FALSE(channel.try_pop(out));
  // Cycle far past capacity so the cursors wrap the slot array repeatedly.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(channel.try_push(next_in++));
    EXPECT_FALSE(channel.try_push(12345));  // full: push refused, not lost
    EXPECT_EQ(channel.approx_size(), 4u);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(channel.try_pop(out));
      EXPECT_EQ(out, next_out++);
    }
    EXPECT_TRUE(channel.empty());
  }
}

TEST(SpscChannelTest, TwoThreadStreamArrivesIntactAndInOrder) {
  // One producer, one consumer, a ring much smaller than the stream:
  // every value must arrive exactly once, in order, despite full-ring
  // backoff. (CI runs this under TSan, which also checks the fences.)
  constexpr std::uint64_t kCount = 200000;
  util::SpscChannel<std::uint64_t> channel(64);
  std::thread producer([&channel] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!channel.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t value = 0;
    if (channel.try_pop(value)) {
      ASSERT_EQ(value, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(channel.empty());
}

}  // namespace
}  // namespace aeq
