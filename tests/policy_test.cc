// Admission-policy framework tests (src/policy/, DESIGN.md §13).
//
// Covers, in order:
//   * the registry (builtin names, custom registration, unknown-kind abort),
//   * the legacy-alias folding in ExperimentConfig (hard errors on
//     conflicts, silent folding otherwise),
//   * the AdmissionDecision drop contract (dropped => no completion
//     feedback, at the stack level and through QuotaController),
//   * per-policy unit behavior (windowed base mechanics, ticket pool,
//     bandit, SWP pacing, rejection adapter),
//   * the determinism property: every registered policy produces identical
//     metrics and schedule digests for a fixed seed across repeated runs,
//     both scheduler backends, and shard counts 1/2/4, and
//   * gauge-bounds: every policy's gauges sit inside their documented
//     [lo, hi] after a real workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/quota.h"
#include "policy/adapters.h"
#include "policy/bandit.h"
#include "policy/registry.h"
#include "policy/swp_pacing.h"
#include "policy/ticket_pool.h"
#include "policy/windowed.h"
#include "runner/experiment.h"
#include "sim/digest.h"
#include "workload/size_dist.h"

namespace aeq {
namespace {

rpc::SloConfig make_slo(std::size_t num_qos = 3) {
  if (num_qos == 2) {
    return rpc::SloConfig::make({2.0 * sim::kUsec, 0.0}, 99.0);
  }
  return rpc::SloConfig::make(
      {2.0 * sim::kUsec, 10.0 * sim::kUsec, 0.0}, 99.0);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(PolicyRegistry, BuiltinsRegisteredAndSorted) {
  const std::vector<std::string> names = policy::names();
  for (const char* kind :
       {policy::kAequitas, policy::kAlwaysAdmit, policy::kBandit,
        policy::kSwpPacing, policy::kTicketPool}) {
    EXPECT_TRUE(policy::is_registered(kind)) << kind;
    EXPECT_NE(std::find(names.begin(), names.end(), kind), names.end())
        << kind;
  }
  EXPECT_GE(names.size(), 5u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_FALSE(policy::is_registered("no-such-policy"));
}

TEST(PolicyRegistryDeathTest, UnknownKindAbortsWithNameList) {
  policy::AdmissionSpec spec;
  spec.kind = "no-such-policy";
  policy::PolicyContext context;
  context.slo = make_slo();
  EXPECT_DEATH(policy::make_controller(spec, std::move(context)),
               "no-such-policy");
}

TEST(PolicyRegistry, CustomRegistrationReachesTheExperiment) {
  policy::register_policy(
      "test-always-admit",
      [](const policy::AdmissionSpec&, const policy::PolicyContext&) {
        return std::make_unique<rpc::AlwaysAdmit>();
      });
  ASSERT_TRUE(policy::is_registered("test-always-admit"));

  runner::ExperimentConfig config;
  config.num_hosts = 2;
  config.num_qos = 3;
  config.slo = make_slo();
  config.admission.kind = "test-always-admit";
  runner::Experiment experiment(config);
  const auto decision =
      experiment.admission(0).admit(0.0, 0, 1, net::kQoSHigh, 4096);
  EXPECT_FALSE(decision.downgraded);
  EXPECT_FALSE(decision.dropped);
}

// ---------------------------------------------------------------------------
// Legacy-alias folding
// ---------------------------------------------------------------------------

TEST(AdmissionSpecAlias, LegacyKnobsFoldIntoTheSpec) {
  runner::ExperimentConfig config;
  config.num_hosts = 2;
  config.num_qos = 3;
  config.slo = make_slo();
  config.alpha = 0.05;         // legacy spelling of admission.aequitas.alpha
  config.p_admit_floor = 0.2;  // and of ...p_admit_floor
  runner::Experiment experiment(config);
  ASSERT_NE(experiment.aequitas(0), nullptr);
  // The floor folds through: MD can never push p_admit below 0.2.
  for (int i = 0; i < 500; ++i) {
    experiment.admission(0).on_completion(0.0, 0, 1, net::kQoSHigh,
                                          net::kQoSHigh, 1.0, 8);
  }
  EXPECT_DOUBLE_EQ(experiment.aequitas(0)->p_admit(1, net::kQoSHigh), 0.2);
}

TEST(AdmissionSpecAlias, DisabledAequitasBecomesAlwaysAdmit) {
  runner::ExperimentConfig config;
  config.num_hosts = 2;
  config.num_qos = 3;
  config.slo = make_slo();
  config.enable_aequitas = false;
  runner::Experiment experiment(config);
  EXPECT_EQ(experiment.aequitas(0), nullptr);
  EXPECT_EQ(experiment.config().admission.kind, policy::kAlwaysAdmit);
}

TEST(AdmissionSpecAliasDeathTest, DisabledFlagConflictsWithExplicitKind) {
  runner::ExperimentConfig config;
  config.num_hosts = 2;
  config.num_qos = 3;
  config.slo = make_slo();
  config.enable_aequitas = false;
  config.admission.kind = policy::kTicketPool;
  EXPECT_DEATH(runner::Experiment experiment(config), "enable_aequitas");
}

TEST(AdmissionSpecAliasDeathTest, LegacyAlphaConflictsWithSpecAlpha) {
  runner::ExperimentConfig config;
  config.num_hosts = 2;
  config.num_qos = 3;
  config.slo = make_slo();
  config.alpha = 0.05;
  config.admission.aequitas.alpha = 0.07;
  EXPECT_DEATH(runner::Experiment experiment(config), "alpha");
}

TEST(AdmissionSpecAliasDeathTest, LegacyKnobRequiresAequitasKind) {
  runner::ExperimentConfig config;
  config.num_hosts = 2;
  config.num_qos = 3;
  config.slo = make_slo();
  config.alpha = 0.05;
  config.admission.kind = policy::kTicketPool;
  EXPECT_DEATH(runner::Experiment experiment(config), "legacy Aequitas knob");
}

TEST(AdmissionSpecAliasDeathTest, LegacyFactoryConflictsWithExplicitKind) {
  runner::ExperimentConfig config;
  config.num_hosts = 2;
  config.num_qos = 3;
  config.slo = make_slo();
  config.admission_factory = [](sim::Simulator&, net::HostId, sim::Rng) {
    return std::make_unique<rpc::AlwaysAdmit>();
  };
  config.admission.kind = policy::kBandit;
  EXPECT_DEATH(runner::Experiment experiment(config), "admission_factory");
}

// ---------------------------------------------------------------------------
// The drop contract: dropped => no completion feedback
// ---------------------------------------------------------------------------

// Counts feedback per requested QoS; drops every SLO-class issue.
class DropAllSloClasses final : public rpc::AdmissionController {
 public:
  explicit DropAllSloClasses(rpc::SloConfig slo) : slo_(std::move(slo)) {}

  rpc::AdmissionDecision admit(sim::Time, net::HostId, net::HostId,
                               net::QoSLevel qos_requested,
                               std::uint64_t) override {
    if (slo_.has_slo(qos_requested)) {
      ++drops_;
      return {qos_requested, false, true, 0.0};
    }
    return {qos_requested, false, false, 1.0};
  }
  void on_completion(sim::Time, net::HostId, net::HostId,
                     net::QoSLevel qos_requested, net::QoSLevel, sim::Time,
                     std::uint64_t) override {
    ++feedback_[qos_requested];
  }

  std::uint64_t drops() const { return drops_; }
  std::uint64_t feedback(net::QoSLevel qos) const {
    const auto found = feedback_.find(qos);
    return found == feedback_.end() ? 0 : found->second;
  }

 private:
  rpc::SloConfig slo_;
  std::uint64_t drops_ = 0;
  std::map<net::QoSLevel, std::uint64_t> feedback_;
};

TEST(DropContract, DroppedRpcsGenerateNoCompletionFeedback) {
  runner::ExperimentConfig config;
  config.num_hosts = 2;
  config.num_qos = 3;
  config.slo = make_slo();
  DropAllSloClasses* probe = nullptr;
  config.admission_factory = [&probe, slo = config.slo](
                                 sim::Simulator&, net::HostId host,
                                 sim::Rng) {
    auto controller = std::make_unique<DropAllSloClasses>(slo);
    if (host == 0) probe = controller.get();
    return controller;
  };
  runner::Experiment experiment(config);
  ASSERT_NE(probe, nullptr);

  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(16 * sim::kKiB));
  workload::GeneratorConfig gen;
  gen.classes = {{rpc::Priority::kPC, 0.2 * sim::gbps(100), sizes, 0.0},
                 {rpc::Priority::kBE, 0.2 * sim::gbps(100), sizes, 0.0}};
  experiment.add_generator(0, gen, workload::fixed_destination(1));
  experiment.run(0.0, 0.5 * sim::kMsec, 0.2 * sim::kMsec);

  // Every SLO-class issue was dropped; none of them may feed back. The
  // scavenger class was admitted and completes normally.
  EXPECT_GT(probe->drops(), 0u);
  EXPECT_EQ(probe->feedback(net::kQoSHigh), 0u);
  EXPECT_EQ(probe->feedback(net::kQoSMid), 0u);
  EXPECT_GT(probe->feedback(net::kQoSLow), 0u);
  EXPECT_EQ(experiment.metrics().completed(net::kQoSHigh), 0u);
}

TEST(DropContract, QuotaDropLeavesInnerAimdStateUntouched) {
  // QuotaController with drop_over_quota: an over-quota drop must not feed
  // the inner Aequitas AIMD (the RPC never ran, so there is nothing to
  // learn from) — and per the contract the stack never calls on_completion
  // for it either. Verify the decision shape and that inner p_admit stays
  // at its initial value after drops.
  sim::Simulator simulator;
  core::QuotaServerConfig server_config;
  server_config.qos_budget_bytes_per_sec = {1.0, sim::gbps(100), 0.0};
  core::QuotaServer server(simulator, server_config);
  const auto tenant = server.register_tenant(1.0);
  core::AequitasConfig aequitas_config;
  aequitas_config.slo = make_slo();
  core::QuotaControllerConfig quota_config;
  quota_config.drop_over_quota = true;
  core::QuotaController controller(
      simulator, server, tenant,
      std::make_unique<core::AequitasController>(aequitas_config,
                                                 sim::Rng(1)),
      quota_config);
  // The ~zero QoS_h budget forces over-quota drops immediately.
  int drops = 0;
  for (int i = 0; i < 50; ++i) {
    const auto decision = controller.admit(0.0, 0, 1, net::kQoSHigh, 4096);
    if (decision.dropped) ++drops;
  }
  EXPECT_GT(drops, 0);
  EXPECT_DOUBLE_EQ(controller.aequitas().p_admit(1, net::kQoSHigh), 1.0);
}

TEST(DropContract, RejectionAdapterConvertsDowngradesOnly) {
  auto inner = std::make_unique<DropAllSloClasses>(make_slo());
  // Wrap a policy that *downgrades* nothing: drops pass through untouched.
  policy::RejectionAdapter adapter(std::move(inner));
  const auto dropped = adapter.admit(0.0, 0, 1, net::kQoSHigh, 4096);
  EXPECT_TRUE(dropped.dropped);
  EXPECT_FALSE(dropped.downgraded);
  EXPECT_EQ(dropped.qos_run, net::kQoSHigh);

  // And a downgrading policy: the adapter rewrites the decision to a drop
  // that keeps the requested QoS and the inner p_admit.
  policy::TicketPoolConfig config;
  config.initial_concurrency = 1;
  config.min_concurrency = 1;
  auto pool = std::make_unique<policy::TicketPoolController>(
      config, 3, make_slo());
  policy::RejectionAdapter drop_pool(std::move(pool));
  EXPECT_FALSE(drop_pool.admit(0.0, 0, 1, net::kQoSHigh, 4096).dropped);
  const auto rejected = drop_pool.admit(0.0, 0, 1, net::kQoSHigh, 4096);
  EXPECT_TRUE(rejected.dropped);
  EXPECT_FALSE(rejected.downgraded);
  EXPECT_EQ(rejected.qos_run, net::kQoSHigh);
  EXPECT_DOUBLE_EQ(rejected.p_admit, 0.0);
}

// ---------------------------------------------------------------------------
// Windowed base mechanics
// ---------------------------------------------------------------------------

class WindowProbe final : public policy::WindowedController {
 public:
  WindowProbe(std::size_t num_qos, rpc::SloConfig slo, sim::Time width)
      : WindowedController(num_qos, std::move(slo), width) {}

  void on_window(const obs::WindowStats& window) override {
    windows.push_back(window);
  }

  std::vector<obs::WindowStats> windows;

 protected:
  rpc::AdmissionDecision decide(sim::Time, net::HostId, net::HostId,
                                net::QoSLevel qos_requested,
                                std::uint64_t) override {
    return {qos_requested, false, false, 1.0};
  }
};

TEST(WindowedController, ClosesEmptyWindowsAcrossIdleGaps) {
  WindowProbe probe(3, make_slo(), 100 * sim::kUsec);
  probe.admit(0.0, 0, 1, net::kQoSHigh, 4096);
  // A long idle gap: the next call first closes every window in between,
  // so window-indexed adaptation sees simulated time, not call counts.
  probe.admit(1050 * sim::kUsec, 0, 1, net::kQoSHigh, 4096);
  ASSERT_EQ(probe.windows.size(), 10u);
  EXPECT_EQ(probe.windows[0].index, 0u);
  EXPECT_EQ(probe.windows[0].admits, 1u);
  for (std::size_t w = 1; w < 10; ++w) {
    EXPECT_EQ(probe.windows[w].index, w);
    EXPECT_EQ(probe.windows[w].admits, 0u);
  }
  EXPECT_EQ(probe.windows_closed(), 10u);
}

TEST(WindowedController, WindowStatsAttributeRequestedQosAndSloVerdict) {
  const sim::Time width = 100 * sim::kUsec;
  WindowProbe probe(3, make_slo(), width);
  probe.admit(0.0, 0, 1, net::kQoSHigh, 4096);
  probe.admit(0.0, 0, 1, net::kQoSHigh, 4096);
  // One on-time completion (target 2us/MTU => 8 MTUs budget 16us) and one
  // late, both requested on QoS_h but one run on the scavenger class.
  probe.on_completion(10 * sim::kUsec, 0, 1, net::kQoSHigh, net::kQoSHigh,
                      10 * sim::kUsec, 8);
  probe.on_completion(20 * sim::kUsec, 0, 1, net::kQoSHigh, net::kQoSLow,
                      100 * sim::kUsec, 8);
  probe.admit(width, 0, 1, net::kQoSLow, 4096);  // closes window 0
  ASSERT_EQ(probe.windows.size(), 1u);
  const obs::WindowStats& window = probe.windows[0];
  EXPECT_EQ(window.qos[net::kQoSHigh].completed, 2u);
  EXPECT_EQ(window.qos[net::kQoSHigh].slo_met, 1u);
  EXPECT_DOUBLE_EQ(window.qos[net::kQoSHigh].slo_compliance, 0.5);
  EXPECT_EQ(window.qos[net::kQoSLow].completed, 0u);
  EXPECT_EQ(window.admits, 2u);
}

// ---------------------------------------------------------------------------
// Ticket pool
// ---------------------------------------------------------------------------

TEST(TicketPool, RejectsWhenThePoolIsEmptyAndReleasesOnCompletion) {
  policy::TicketPoolConfig config;
  config.initial_concurrency = 2;
  config.min_concurrency = 1;
  policy::TicketPoolController pool(config, 3, make_slo());
  EXPECT_FALSE(pool.admit(0.0, 0, 1, net::kQoSHigh, 4096).downgraded);
  EXPECT_FALSE(pool.admit(0.0, 0, 1, net::kQoSMid, 4096).downgraded);
  // Pool exhausted: the third SLO-class issue is rejected to the scavenger.
  const auto rejected = pool.admit(0.0, 0, 1, net::kQoSHigh, 4096);
  EXPECT_TRUE(rejected.downgraded);
  EXPECT_EQ(rejected.qos_run, net::kQoSLow);
  EXPECT_DOUBLE_EQ(rejected.p_admit, 0.0);
  EXPECT_EQ(pool.tickets_in_flight(), 2);

  // Scavenger-requested traffic bypasses the pool.
  EXPECT_FALSE(pool.admit(0.0, 0, 1, net::kQoSLow, 4096).downgraded);
  EXPECT_EQ(pool.tickets_in_flight(), 2);

  // A ticketed completion frees a slot; the rejected RPC (which ran as
  // scavenger) and native scavenger completions release nothing.
  pool.on_completion(1 * sim::kUsec, 0, 1, net::kQoSHigh, net::kQoSHigh,
                     1 * sim::kUsec, 8);
  EXPECT_EQ(pool.tickets_in_flight(), 1);
  pool.on_completion(1 * sim::kUsec, 0, 1, net::kQoSHigh, net::kQoSLow,
                     1 * sim::kUsec, 8);
  EXPECT_EQ(pool.tickets_in_flight(), 1);
  EXPECT_FALSE(pool.admit(2 * sim::kUsec, 0, 1, net::kQoSHigh, 4096)
                   .downgraded);
}

TEST(TicketPool, ProbesUpWhenGoodputKeepsImproving) {
  policy::TicketPoolConfig config;
  config.initial_concurrency = 8;
  config.window = 100 * sim::kUsec;
  policy::TicketPoolController pool(config, 3, make_slo());
  const double initial = pool.concurrency_limit();
  // Feed windows of ever-increasing ticketed goodput: each probe-up is
  // adopted and the limit climbs monotonically.
  sim::Time now = 0.0;
  int per_window = 4;
  for (int w = 0; w < 20; ++w) {
    for (int i = 0; i < per_window; ++i) {
      pool.admit(now, 0, 1, net::kQoSHigh, 4096);
      pool.on_completion(now, 0, 1, net::kQoSHigh, net::kQoSHigh,
                         1 * sim::kUsec, 1);
    }
    per_window += 2;
    now += config.window;
  }
  pool.admit(now, 0, 1, net::kQoSHigh, 4096);  // close the last window
  EXPECT_GT(pool.concurrency_limit(), initial);
  pool.audit_invariants(now);
}

// ---------------------------------------------------------------------------
// Bandit
// ---------------------------------------------------------------------------

TEST(Bandit, EpsilonDecaysToItsFloorAndActionStaysInRange) {
  policy::BanditConfig config;
  config.window = 100 * sim::kUsec;
  policy::BanditController bandit(config, 3, make_slo(), sim::Rng(7));
  EXPECT_DOUBLE_EQ(bandit.epsilon(), config.epsilon0);
  sim::Time now = 0.0;
  for (int w = 0; w < 400; ++w) {
    bandit.admit(now, 0, 1, net::kQoSHigh, 4096);
    bandit.on_completion(now, 0, 1, net::kQoSHigh, net::kQoSHigh,
                         1 * sim::kUsec, 1);
    now += config.window;
  }
  EXPECT_DOUBLE_EQ(bandit.epsilon(), config.epsilon_min);
  bool found = false;
  for (const double action : config.actions) {
    if (action == bandit.current_p_admit()) found = true;
  }
  EXPECT_TRUE(found);
  bandit.audit_invariants(now);
}

TEST(Bandit, AppliesItsActionAsTheAdmitProbability) {
  policy::BanditConfig config;
  config.actions = {0.0};  // a single all-reject action
  config.epsilon0 = 0.0;
  config.epsilon_min = 0.0;
  policy::BanditController bandit(config, 3, make_slo(), sim::Rng(7));
  for (int i = 0; i < 200; ++i) {
    const auto decision = bandit.admit(0.0, 0, 1, net::kQoSHigh, 4096);
    ASSERT_TRUE(decision.downgraded);
    ASSERT_EQ(decision.qos_run, net::kQoSLow);
  }
  // The scavenger class is never gated, whatever the action.
  EXPECT_FALSE(bandit.admit(0.0, 0, 1, net::kQoSLow, 4096).downgraded);
}

TEST(BanditDeathTest, RejectsMalformedActionSets) {
  policy::BanditConfig config;
  config.actions = {};
  EXPECT_DEATH(policy::BanditController(config, 3, make_slo(), sim::Rng(1)),
               "action");
}

// ---------------------------------------------------------------------------
// SWP pacing
// ---------------------------------------------------------------------------

TEST(SwpPacing, CollapsesAdmittedTrafficToOneClassAndSpillsOverBudget) {
  policy::SwpPacingConfig config;
  config.initial_rate_fraction = 0.5;
  config.window = 100 * sim::kUsec;
  policy::SwpPacingController swp(config, 3, make_slo(), sim::gbps(100),
                                  /*drop_rejects=*/false);
  // In budget: every class runs on the single paced class (QoS_h), even a
  // scavenger request — SWP has no priorities.
  const auto high = swp.admit(0.0, 0, 1, net::kQoSHigh, 4096);
  EXPECT_EQ(high.qos_run, net::kQoSHigh);
  EXPECT_FALSE(high.downgraded);
  const auto low = swp.admit(0.0, 0, 1, net::kQoSLow, 4096);
  EXPECT_EQ(low.qos_run, net::kQoSHigh);

  // Exhaust the token bucket at t=0 (capacity = burst_windows * rate *
  // width): over-budget issues spill to the scavenger class as downgrades.
  bool spilled = false;
  for (int i = 0; i < 100000 && !spilled; ++i) {
    const auto decision = swp.admit(0.0, 0, 1, net::kQoSHigh, 64 * 1024);
    if (decision.downgraded) {
      EXPECT_EQ(decision.qos_run, net::kQoSLow);
      spilled = true;
    }
  }
  EXPECT_TRUE(spilled);
  swp.audit_invariants(0.0);
}

TEST(SwpPacing, DropVariantDropsInsteadOfSpilling) {
  policy::SwpPacingConfig config;
  config.initial_rate_fraction = 0.1;
  policy::SwpPacingController swp(config, 3, make_slo(), sim::gbps(100),
                                  /*drop_rejects=*/true);
  bool dropped = false;
  for (int i = 0; i < 100000 && !dropped; ++i) {
    const auto decision = swp.admit(0.0, 0, 1, net::kQoSHigh, 64 * 1024);
    EXPECT_FALSE(decision.downgraded);
    dropped = decision.dropped;
  }
  EXPECT_TRUE(dropped);
}

TEST(SwpPacing, SlowsDownUnderSustainedSloViolations) {
  policy::SwpPacingConfig config;
  config.initial_rate_fraction = 0.9;
  config.window = 100 * sim::kUsec;
  policy::SwpPacingController swp(config, 3, make_slo(), sim::gbps(100),
                                  false);
  sim::Time now = 0.0;
  for (int w = 0; w < 10; ++w) {
    for (int i = 0; i < 8; ++i) {
      swp.admit(now, 0, 1, net::kQoSHigh, 4096);
      // Way over the 2us/MTU target: every window is violating.
      swp.on_completion(now, 0, 1, net::kQoSHigh, net::kQoSHigh,
                        1 * sim::kMsec, 1);
    }
    now += config.window;
  }
  swp.admit(now, 0, 1, net::kQoSHigh, 4096);
  EXPECT_LT(swp.rate_fraction(), config.initial_rate_fraction);
  EXPECT_GE(swp.rate_fraction(), config.min_rate_fraction);
  swp.audit_invariants(now);
}

// ---------------------------------------------------------------------------
// Determinism and gauge-bounds properties over a real workload
// ---------------------------------------------------------------------------

struct PolicyRun {
  std::uint64_t digest = 0;
  std::uint64_t completed = 0;
  std::uint64_t downgraded = 0;
  std::uint64_t bytes = 0;
};

PolicyRun run_policy_workload(const std::string& kind, std::size_t shards,
                              sim::SchedulerBackend backend,
                              std::uint64_t seed) {
  runner::ExperimentConfig config;
  config.scheduler_backend = backend;
  config.num_hosts = 8;
  config.num_qos = 3;
  config.admission.kind = kind;
  config.slo = make_slo();
  config.shards = shards;
  // Audit ticks are per-executive events (see digest_test.cc): pin the
  // audit off so the schedule digest is comparable across shard counts.
  config.audit = false;
  config.schedule_digest = sim::kDigestBuildEnabled;
  config.seed = seed;

  runner::Experiment experiment(config);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(16 * sim::kKiB));
  for (std::size_t h = 0; h < config.num_hosts; ++h) {
    workload::GeneratorConfig gen;
    gen.classes = {
        {rpc::Priority::kPC, 0.5 * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kNC, 0.4 * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kBE, 0.3 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(static_cast<net::HostId>(h), gen);
  }
  experiment.run(0.2 * sim::kMsec, 0.8 * sim::kMsec, 0.5 * sim::kMsec);

  // While the run is hot, assert every host's gauges respect their
  // documented bounds (the audit's gauge-bounds check, run unconditionally
  // here so it also covers AEQ_AUDIT=OFF builds).
  for (std::size_t h = 0; h < config.num_hosts; ++h) {
    for (const rpc::Gauge& gauge :
         experiment.admission(static_cast<net::HostId>(h)).gauges()) {
      EXPECT_GE(gauge.value, gauge.lo) << kind << " gauge " << gauge.name;
      EXPECT_LE(gauge.value, gauge.hi) << kind << " gauge " << gauge.name;
    }
  }

  PolicyRun result;
  if (sim::kDigestBuildEnabled) {
    result.digest = experiment.schedule_digest().canonical();
  }
  const auto& metrics = experiment.metrics();
  result.completed = metrics.total_completed();
  for (net::QoSLevel q = 0; q < 3; ++q) {
    result.downgraded += metrics.downgraded(q);
    result.bytes += metrics.bytes_completed(q);
  }
  return result;
}

class PolicyDeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyDeterminismTest, SameSeedSameMetricsAndDigest) {
  const PolicyRun a = run_policy_workload(
      GetParam(), 1, sim::SchedulerBackend::kCalendar, 42);
  const PolicyRun b = run_policy_workload(
      GetParam(), 1, sim::SchedulerBackend::kCalendar, 42);
  ASSERT_GT(a.completed, 100u) << "workload too light to mean anything";
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.downgraded, b.downgraded);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST_P(PolicyDeterminismTest, BackendsAgree) {
  const PolicyRun heap =
      run_policy_workload(GetParam(), 1, sim::SchedulerBackend::kHeap, 42);
  const PolicyRun cal = run_policy_workload(
      GetParam(), 1, sim::SchedulerBackend::kCalendar, 42);
  EXPECT_EQ(heap.digest, cal.digest);
  EXPECT_EQ(heap.completed, cal.completed);
  EXPECT_EQ(heap.downgraded, cal.downgraded);
  EXPECT_EQ(heap.bytes, cal.bytes);
}

TEST_P(PolicyDeterminismTest, ShardCountsOneTwoFourAgree) {
  const PolicyRun serial = run_policy_workload(
      GetParam(), 1, sim::SchedulerBackend::kCalendar, 42);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    const PolicyRun sharded = run_policy_workload(
        GetParam(), shards, sim::SchedulerBackend::kCalendar, 42);
    EXPECT_EQ(serial.digest, sharded.digest) << shards << " shards";
    EXPECT_EQ(serial.completed, sharded.completed) << shards << " shards";
    EXPECT_EQ(serial.downgraded, sharded.downgraded) << shards << " shards";
    EXPECT_EQ(serial.bytes, sharded.bytes) << shards << " shards";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyDeterminismTest,
    ::testing::Values(policy::kAequitas, policy::kAlwaysAdmit,
                      policy::kBandit, policy::kSwpPacing,
                      policy::kTicketPool),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace aeq
