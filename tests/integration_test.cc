// End-to-end integration tests of the full Aequitas loop: SLO tracking,
// downgrade accounting, fairness, mix convergence direction, determinism,
// and operation over the two-tier (leaf-spine) fabric.
#include <gtest/gtest.h>

#include <memory>

#include "runner/experiment.h"

namespace aeq {
namespace {

constexpr double kSizeMtus = 8.0;  // 32KB RPCs at 4KB MTU

runner::ExperimentConfig two_qos_config(double slo_us) {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  config.enable_aequitas = true;
  config.slo =
      rpc::SloConfig::make({slo_us * sim::kUsec / kSizeMtus, 0.0}, 99.9);
  return config;
}

void attach_two_senders(runner::Experiment& experiment, double qosh_frac_a,
                        double qosh_frac_b) {
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  const double fractions[2] = {qosh_frac_a, qosh_frac_b};
  for (net::HostId h : {0, 1}) {
    workload::GeneratorConfig gen;
    gen.classes = {
        {rpc::Priority::kPC, fractions[h] * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kBE, (1 - fractions[h]) * sim::gbps(100), sizes,
         0.0}};
    experiment.add_generator(h, gen, workload::fixed_destination(2));
  }
}

TEST(AequitasIntegrationTest, TailTracksSloUnderOverload) {
  runner::Experiment experiment(two_qos_config(15.0));
  attach_two_senders(experiment, 0.7, 0.7);
  experiment.run(20 * sim::kMsec, 25 * sim::kMsec);
  const double p999 = experiment.metrics().rnl_by_run_qos(0).p999();
  // Within 40% of the 15us target despite 2x offered overload.
  EXPECT_LT(p999, 1.4 * 15 * sim::kUsec);
  EXPECT_GT(p999, 5 * sim::kUsec);  // and not trivially empty
  // Meaningful admitted share (not starved to the floor).
  EXPECT_GT(experiment.metrics().admitted_share(0), 0.05);
}

TEST(AequitasIntegrationTest, WithoutAequitasTailExplodes) {
  auto config = two_qos_config(15.0);
  config.enable_aequitas = false;
  runner::Experiment experiment(config);
  attach_two_senders(experiment, 0.7, 0.7);
  experiment.run(10 * sim::kMsec, 10 * sim::kMsec);
  // 140% offered on QoS_h alone: queues grow without bound.
  EXPECT_GT(experiment.metrics().rnl_by_run_qos(0).p999(),
            10 * 15 * sim::kUsec);
}

TEST(AequitasIntegrationTest, AccountingConsistent) {
  runner::Experiment experiment(two_qos_config(15.0));
  attach_two_senders(experiment, 0.7, 0.7);
  experiment.run(5 * sim::kMsec, 10 * sim::kMsec);
  const auto& metrics = experiment.metrics();
  // Every issued PC RPC either ran on QoS_h or was downgraded to QoS_l.
  const std::uint64_t total =
      metrics.completed(0) + metrics.completed(1);
  EXPECT_GT(metrics.downgraded(0), 0u);
  EXPECT_EQ(metrics.total_completed(), total);
  // Downgraded RPCs ran on the scavenger class.
  EXPECT_GT(metrics.bytes_admitted(1), metrics.bytes_requested(1));
  EXPECT_LT(metrics.bytes_admitted(0), metrics.bytes_requested(0));
}

TEST(AequitasIntegrationTest, InQuotaChannelKeepsHighAdmitProbability) {
  runner::Experiment experiment(two_qos_config(15.0));
  attach_two_senders(experiment, /*A=*/0.05, /*B=*/0.8);
  experiment.run(30 * sim::kMsec, 30 * sim::kMsec);
  const double p_a = experiment.aequitas(0)->p_admit(2, 0);
  const double p_b = experiment.aequitas(1)->p_admit(2, 0);
  EXPECT_GT(p_a, 0.7);  // well-behaved channel barely throttled
  EXPECT_LT(p_b, p_a);  // the heavy channel carries the downgrades
}

TEST(AequitasIntegrationTest, HeavierChannelGetsLowerAdmitProbability) {
  runner::Experiment experiment(two_qos_config(15.0));
  attach_two_senders(experiment, 0.4, 0.8);
  experiment.run(40 * sim::kMsec, 20 * sim::kMsec);
  const double p_a = experiment.aequitas(0)->p_admit(2, 0);
  const double p_b = experiment.aequitas(1)->p_admit(2, 0);
  EXPECT_LT(p_b, p_a);
  // Admitted throughput roughly equal => p ratio tracks load ratio.
  EXPECT_NEAR(p_b / p_a, 0.5, 0.35);
}

TEST(AequitasIntegrationTest, DeterministicForFixedSeed) {
  auto run_once = [](std::uint64_t seed) {
    auto config = two_qos_config(15.0);
    config.seed = seed;
    runner::Experiment experiment(config);
    attach_two_senders(experiment, 0.7, 0.7);
    experiment.run(2 * sim::kMsec, 4 * sim::kMsec);
    return std::tuple(experiment.metrics().total_completed(),
                      experiment.metrics().rnl_by_run_qos(0).p999(),
                      experiment.simulator().events_processed());
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(AequitasIntegrationTest, WorksOnLeafSpine) {
  runner::ExperimentConfig config;
  config.use_leaf_spine = true;
  config.leaf_spine.hosts_per_leaf = 4;
  config.leaf_spine.num_leaves = 3;
  config.leaf_spine.num_spines = 2;
  // 2:1 oversubscription at the leaf uplinks.
  config.leaf_spine.fabric_rate = sim::gbps(100);
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = true;
  config.slo = rpc::SloConfig::make(
      {25 * sim::kUsec / kSizeMtus, 50 * sim::kUsec / kSizeMtus, 0.0},
      99.9);
  runner::Experiment experiment(config);
  ASSERT_EQ(experiment.network().num_hosts(), 12u);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  for (net::HostId h = 0; h < 12; ++h) {
    workload::GeneratorConfig gen;
    const double rate = 0.6 * sim::gbps(100);
    gen.classes = {{rpc::Priority::kPC, 0.5 * rate, sizes, 0.0},
                   {rpc::Priority::kNC, 0.3 * rate, sizes, 0.0},
                   {rpc::Priority::kBE, 0.2 * rate, sizes, 0.0}};
    experiment.add_generator(h, gen);
  }
  experiment.run(4 * sim::kMsec, 6 * sim::kMsec);
  EXPECT_GT(experiment.metrics().total_completed(), 1000u);
  // The SLO-bearing class is protected relative to the scavenger.
  EXPECT_LT(experiment.metrics().rnl_by_run_qos(0).p999(),
            experiment.metrics().rnl_by_run_qos(2).p999());
}

TEST(AequitasIntegrationTest, DwrrBehavesLikeWfqAtCoarseGrain) {
  for (auto scheduler :
       {net::SchedulerType::kWfq, net::SchedulerType::kDwrr}) {
    auto config = two_qos_config(15.0);
    config.scheduler = scheduler;
    runner::Experiment experiment(config);
    attach_two_senders(experiment, 0.7, 0.7);
    experiment.run(10 * sim::kMsec, 10 * sim::kMsec);
    // Both WFQ realizations keep the admitted class within ~2x of SLO.
    EXPECT_LT(experiment.metrics().rnl_by_run_qos(0).p999(),
              2.0 * 15 * sim::kUsec)
        << "scheduler " << static_cast<int>(scheduler);
  }
}

}  // namespace
}  // namespace aeq
