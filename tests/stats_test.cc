// Unit + property tests for percentile tracking, summaries, histograms and
// time series.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "stats/histogram.h"
#include "stats/percentile.h"
#include "stats/summary.h"
#include "stats/sliding_window.h"
#include "stats/timeseries.h"

namespace aeq::stats {
namespace {

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryTest, MergeMatchesCombinedStream) {
  sim::Rng rng(3);
  Summary all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 10);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(PercentileTest, MatchesSortExactly) {
  sim::Rng rng(17);
  PercentileTracker tracker;
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(0.0, 1000.0);
    tracker.add(x);
    values.push_back(x);
  }
  std::sort(values.begin(), values.end());
  for (double pct : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(pct / 100.0 * values.size()));
    EXPECT_DOUBLE_EQ(tracker.percentile(pct), values[rank - 1])
        << "pct=" << pct;
  }
  EXPECT_DOUBLE_EQ(tracker.percentile(100.0), values.back());
}

TEST(PercentileTest, EmptyReturnsZero) {
  PercentileTracker t;
  EXPECT_DOUBLE_EQ(t.p999(), 0.0);
  EXPECT_EQ(t.count(), 0u);
}

TEST(PercentileTest, SingleValue) {
  PercentileTracker t;
  t.add(42.0);
  EXPECT_DOUBLE_EQ(t.p50(), 42.0);
  EXPECT_DOUBLE_EQ(t.p999(), 42.0);
}

TEST(PercentileTest, ReservoirKeepsTailApproximately) {
  PercentileTracker t(10000, 99);
  // Uniform [0,1): p99 of the true distribution is 0.99.
  sim::Rng rng(5);
  for (int i = 0; i < 200000; ++i) t.add(rng.uniform());
  EXPECT_EQ(t.count(), 200000u);
  EXPECT_NEAR(t.p99(), 0.99, 0.01);
  EXPECT_NEAR(t.p50(), 0.50, 0.02);
}

TEST(PercentileTest, ClearResets) {
  PercentileTracker t;
  t.add(1.0);
  t.clear();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.p50(), 0.0);
}

TEST(HistogramTest, BinningAndCdf) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1.0);   // underflow
  h.add(100.0);  // overflow
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bin(i), 1u);
  EXPECT_NEAR(h.cdf_at(4), 6.0 / 12.0, 1e-12);  // underflow + bins 0..4
  EXPECT_NEAR(h.cdf_at(9), 11.0 / 12.0, 1e-12);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.bin(1), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(TimeSeriesTest, ValueAtUsesLastBefore) {
  TimeSeries ts;
  ts.record(1.0, 10.0);
  ts.record(2.0, 20.0);
  ts.record(3.0, 30.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ts.value_at(2.5), 20.0);
  EXPECT_DOUBLE_EQ(ts.value_at(3.0), 30.0);
}

TEST(TimeSeriesTest, AverageInWindow) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.record(i, i);
  EXPECT_DOUBLE_EQ(ts.average_in(0.0, 5.0), 2.0);  // 0..4
}

TEST(TimeSeriesTest, ResampleEndpoints) {
  TimeSeries ts;
  ts.record(0.0, 1.0);
  ts.record(10.0, 2.0);
  const auto points = ts.resample(3);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points.front().t, 0.0);
  EXPECT_DOUBLE_EQ(points.back().t, 10.0);
  EXPECT_DOUBLE_EQ(points.back().value, 2.0);
}

TEST(SlidingWindowTest, EvictsOldSamples) {
  SlidingWindowPercentile window(1.0);
  window.add(0.1, 100.0);
  window.add(0.6, 200.0);
  window.add(1.5, 300.0);  // evicts 0.1 (cutoff 0.5); 0.6 survives
  EXPECT_EQ(window.count(1.5), 2u);
  EXPECT_DOUBLE_EQ(window.percentile(1.5, 100.0), 300.0);
  EXPECT_DOUBLE_EQ(window.percentile(1.5, 50.0), 200.0);
  // Much later, everything is gone.
  EXPECT_DOUBLE_EQ(window.percentile(10.0, 99.0), 0.0);
}

TEST(SlidingWindowTest, MatchesFullTrackerWithinOneWindow) {
  sim::Rng rng(21);
  SlidingWindowPercentile window(10.0);
  PercentileTracker full;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(0, 100);
    window.add(i * 1e-3, v);  // all samples within 5s < 10s window
    full.add(v);
  }
  for (double pct : {50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(window.percentile(5.0, pct), full.percentile(pct));
  }
}

TEST(RateMeterTest, WindowedRates) {
  RateMeter meter(1.0);
  meter.add(0.5, 100.0);
  meter.add(1.5, 200.0);  // closes window [0,1) with 100 bytes
  meter.finish(2.0);
  const auto& pts = meter.series().points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].value, 100.0);
  EXPECT_DOUBLE_EQ(pts[1].value, 200.0);
}


TEST(HistogramTest, MergeOfPartsEqualsWhole) {
  sim::Rng rng(11);
  Histogram whole(0.0, 100.0, 50);
  Histogram shards[3] = {Histogram(0.0, 100.0, 50),
                         Histogram(0.0, 100.0, 50),
                         Histogram(0.0, 100.0, 50)};
  for (int i = 0; i < 5000; ++i) {
    // Range wider than the bins so underflow/overflow mass exists.
    const double x = rng.uniform(-20.0, 130.0);
    whole.add(x);
    shards[i % 3].add(x);
  }
  Histogram merged(0.0, 100.0, 50);
  for (const Histogram& shard : shards) merged.merge(shard);
  EXPECT_EQ(merged.total(), whole.total());
  EXPECT_EQ(merged.underflow(), whole.underflow());
  EXPECT_EQ(merged.overflow(), whole.overflow());
  for (std::size_t b = 0; b < whole.bin_count(); ++b) {
    EXPECT_EQ(merged.bin(b), whole.bin(b)) << "bin " << b;
  }
  for (std::size_t b = 0; b < whole.bin_count(); ++b) {
    EXPECT_DOUBLE_EQ(merged.cdf_at(b), whole.cdf_at(b));
  }
}

TEST(HistogramTest, MergeEmptyIsIdentity) {
  Histogram a(0.0, 10.0, 10);
  a.add(3.0);
  a.add(-1.0);
  Histogram empty(0.0, 10.0, 10);
  a.merge(empty);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.underflow(), 1u);
}

TEST(HistogramDeathTest, MergeRejectsMismatchedBinning) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 20);
  EXPECT_DEATH(a.merge(b), "binning");
}

TEST(PercentileTest, UnboundedMergeIsExact) {
  sim::Rng rng(21);
  PercentileTracker whole;
  PercentileTracker parts[4];
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.exponential(1.0) * 50.0;
    whole.add(x);
    parts[i % 4].add(x);
  }
  PercentileTracker merged;
  for (const PercentileTracker& part : parts) merged.merge(part);
  EXPECT_EQ(merged.count(), whole.count());
  for (double pct : {1.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(merged.percentile(pct), whole.percentile(pct))
        << "pct " << pct;
  }
  EXPECT_DOUBLE_EQ(merged.mean(), whole.mean());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(PercentileTest, CappedMergeKeepsExactSummaryAndApproxTail) {
  // Reservoir-capped merge subsamples, but count/mean/min/max stay exact
  // and the tail quantiles stay close.
  sim::Rng rng(31);
  PercentileTracker exact;
  PercentileTracker a(512, 1), b(512, 2);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(0.0, 1000.0);
    exact.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), exact.count());
  // Welford-merged mean differs from the streamed mean only by summation
  // order (rounding), never by represented mass.
  EXPECT_NEAR(a.mean(), exact.mean(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), exact.min());
  EXPECT_DOUBLE_EQ(a.max(), exact.max());
  EXPECT_NEAR(a.percentile(50.0), exact.percentile(50.0), 100.0);
  EXPECT_NEAR(a.percentile(99.0), exact.percentile(99.0), 100.0);
}

TEST(PercentileTest, MergeIntoEmptyCopies) {
  PercentileTracker src;
  for (int i = 1; i <= 100; ++i) src.add(i);
  PercentileTracker dst;
  dst.merge(src);
  EXPECT_EQ(dst.count(), 100u);
  EXPECT_DOUBLE_EQ(dst.percentile(50.0), src.percentile(50.0));
}

}  // namespace
}  // namespace aeq::stats
