// Tests for the centralized per-tenant quota extension (paper §5.2):
// max-min allocation, demand capping, token-bucket enforcement, and the
// downgrade/drop behaviour when a tenant exceeds its share.
#include <gtest/gtest.h>

#include <memory>

#include "core/quota.h"

namespace aeq::core {
namespace {

AequitasConfig aeq_config() {
  AequitasConfig config;
  config.slo = rpc::SloConfig::make(
      {15 * sim::kUsec, 25 * sim::kUsec, 0.0}, 99.9);
  return config;
}

QuotaServerConfig server_config(double budget = 1e9) {
  QuotaServerConfig config;
  config.allocation_interval = 1 * sim::kMsec;
  config.qos_budget_bytes_per_sec = {budget, budget};
  return config;
}

TEST(QuotaServerTest, InitialAllocationIsWeightedFairShare) {
  sim::Simulator s;
  QuotaServer server(s, server_config(900.0));
  const auto a = server.register_tenant(1.0);
  const auto b = server.register_tenant(2.0);
  EXPECT_DOUBLE_EQ(server.allocation(a, 0), 300.0);
  EXPECT_DOUBLE_EQ(server.allocation(b, 0), 600.0);
}

TEST(QuotaServerTest, AllocationCappedAtDemand) {
  sim::Simulator s;
  QuotaServer server(s, server_config(1000.0));
  const auto small = server.register_tenant(1.0);
  const auto big = server.register_tenant(1.0);
  // small demands 100 B/s worth, big demands far more than the budget.
  server.report_demand(small, 0, 100.0 * 1e-3);  // bytes over 1ms
  server.report_demand(big, 0, 5000.0 * 1e-3);
  s.run_until(1.5 * sim::kMsec);
  // small gets its (inflated) demand; big absorbs the rest.
  EXPECT_NEAR(server.allocation(small, 0), 125.0, 1e-9);  // 1.25x headroom
  EXPECT_NEAR(server.allocation(big, 0), 875.0, 1e-9);
  EXPECT_NEAR(server.allocation(small, 0) + server.allocation(big, 0),
              1000.0, 1e-9);
}

// Regression: registering a tenant mid-run used to recompute *every*
// tenant's allocation as the static weighted fair share, clobbering the
// demand-aware max-min allocation the last allocate() produced.
TEST(QuotaServerTest, MidRunRegistrationLeavesExistingAllocationsUntouched) {
  sim::Simulator s;
  QuotaServer server(s, server_config(1000.0));
  const auto a = server.register_tenant(1.0);
  const auto b = server.register_tenant(1.0);
  // Asymmetric demand: a wants little, b absorbs the rest.
  server.report_demand(a, 0, 100.0 * 1e-3);
  server.report_demand(b, 0, 5000.0 * 1e-3);
  s.run_until(1.5 * sim::kMsec);
  ASSERT_NEAR(server.allocation(a, 0), 125.0, 1e-9);
  ASSERT_NEAR(server.allocation(b, 0), 875.0, 1e-9);
  // Mid-interval registration: a and b keep their max-min shares until the
  // next allocate(); only the newcomer starts from its static fair share.
  const auto c = server.register_tenant(2.0);
  EXPECT_NEAR(server.allocation(a, 0), 125.0, 1e-9);
  EXPECT_NEAR(server.allocation(b, 0), 875.0, 1e-9);
  EXPECT_NEAR(server.allocation(c, 0), 1000.0 * 2.0 / 4.0, 1e-9);
  // The next interval folds the newcomer into the water-filling.
  server.report_demand(a, 0, 100.0 * 1e-3);
  server.report_demand(b, 0, 5000.0 * 1e-3);
  server.report_demand(c, 0, 5000.0 * 1e-3);
  s.run_until(2.5 * sim::kMsec);
  EXPECT_NEAR(server.allocation(a, 0), 125.0, 1e-9);
  EXPECT_NEAR(server.allocation(b, 0) + server.allocation(c, 0), 875.0,
              1e-9);
  // b (weight 1) and c (weight 2) split the remainder 1:2.
  EXPECT_NEAR(server.allocation(c, 0), 2.0 * server.allocation(b, 0), 1e-9);
}

TEST(QuotaServerTest, EqualDemandsSplitByWeight) {
  sim::Simulator s;
  QuotaServer server(s, server_config(1000.0));
  const auto a = server.register_tenant(3.0);
  const auto b = server.register_tenant(1.0);
  server.report_demand(a, 0, 10.0);  // both far above budget
  server.report_demand(b, 0, 10.0);
  s.run_until(1.5 * sim::kMsec);
  EXPECT_NEAR(server.allocation(a, 0), 750.0, 1e-9);
  EXPECT_NEAR(server.allocation(b, 0), 250.0, 1e-9);
}

TEST(QuotaControllerTest, WithinQuotaPassesThrough) {
  sim::Simulator s;
  QuotaServer server(s, server_config(1e9));  // 1 GB/s: generous
  const auto tenant = server.register_tenant(1.0);
  QuotaController controller(
      s, server, tenant,
      std::make_unique<AequitasController>(aeq_config(), sim::Rng(1)),
      QuotaControllerConfig{});
  const auto decision = controller.admit(1e-3, 0, 1, 0, 4096);
  EXPECT_EQ(decision.qos_run, 0);
  EXPECT_FALSE(decision.downgraded);
  EXPECT_FALSE(decision.dropped);
  EXPECT_EQ(controller.over_quota_count(), 0u);
}

TEST(QuotaControllerTest, OverQuotaDowngrades) {
  sim::Simulator s;
  QuotaServer server(s, server_config(4096.0));  // ~1 RPC/sec of budget
  const auto tenant = server.register_tenant(1.0);
  QuotaController controller(
      s, server, tenant,
      std::make_unique<AequitasController>(aeq_config(), sim::Rng(1)),
      QuotaControllerConfig{});
  int downgrades = 0;
  for (int i = 0; i < 50; ++i) {
    const auto decision =
        controller.admit(1e-3 + i * 1e-6, 0, 1, 0, 4096);
    if (decision.downgraded) {
      EXPECT_EQ(decision.qos_run, 2);  // lowest of 3 levels
      ++downgrades;
    }
  }
  EXPECT_GT(downgrades, 40);
  EXPECT_GT(controller.over_quota_count(), 0u);
}

TEST(QuotaControllerTest, OverQuotaDropsWhenConfigured) {
  sim::Simulator s;
  QuotaServer server(s, server_config(4096.0));
  const auto tenant = server.register_tenant(1.0);
  QuotaControllerConfig qc;
  qc.drop_over_quota = true;
  QuotaController controller(
      s, server, tenant,
      std::make_unique<AequitasController>(aeq_config(), sim::Rng(1)), qc);
  int drops = 0;
  for (int i = 0; i < 50; ++i) {
    if (controller.admit(1e-3 + i * 1e-6, 0, 1, 0, 4096).dropped) ++drops;
  }
  EXPECT_GT(drops, 40);
}

TEST(QuotaControllerTest, ScavengerClassNeverGated) {
  sim::Simulator s;
  QuotaServer server(s, server_config(1.0));  // essentially zero budget
  const auto tenant = server.register_tenant(1.0);
  QuotaController controller(
      s, server, tenant,
      std::make_unique<AequitasController>(aeq_config(), sim::Rng(1)),
      QuotaControllerConfig{});
  for (int i = 0; i < 20; ++i) {
    const auto decision = controller.admit(1e-3, 0, 1, 2, 1 << 20);
    EXPECT_EQ(decision.qos_run, 2);
    EXPECT_FALSE(decision.downgraded);
  }
}

TEST(QuotaControllerTest, TokensRefillOverTime) {
  sim::Simulator s;
  // Budget fits one 4KB RPC per millisecond.
  QuotaServer server(s, server_config(4096.0 * 1000));
  const auto tenant = server.register_tenant(1.0);
  QuotaControllerConfig qc;
  qc.burst_intervals = 1.0;
  QuotaController controller(
      s, server, tenant,
      std::make_unique<AequitasController>(aeq_config(), sim::Rng(1)), qc);
  // Exhaust the bucket...
  int admitted_burst = 0;
  for (int i = 0; i < 10; ++i) {
    if (!controller.admit(1e-3, 0, 1, 0, 4096).downgraded) ++admitted_burst;
  }
  EXPECT_LT(admitted_burst, 10);
  // ...then wait 5ms: ~5 more RPCs worth of tokens accrue.
  int admitted_later = 0;
  for (int i = 0; i < 10; ++i) {
    if (!controller.admit(6e-3, 0, 1, 0, 4096).downgraded) ++admitted_later;
  }
  EXPECT_GE(admitted_later, 1);
}

}  // namespace
}  // namespace aeq::core
