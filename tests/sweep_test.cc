// Tests for the parallel sweep runner: seed derivation (stable,
// platform-independent, collision-free), jobs resolution, submission-order
// result delivery, byte-identical output for any worker count, parity with
// a directly-run serial Experiment, and exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/experiment.h"
#include "runner/sweep.h"
#include "sim/rng.h"
#include "stats/table.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace aeq::runner {
namespace {

// --- seed derivation -------------------------------------------------------

// Hard-coded values from the reference SplitMix64 sequence; if these ever
// change, previously published results are no longer reproducible.
TEST(SeedDerivationTest, GoldenValuesStable) {
  EXPECT_EQ(sim::splitmix64(0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(sim::splitmix64(1), 0x910a2dec89025cc1ull);
  EXPECT_EQ(sim::splitmix64(0xDEADBEEFull), 0x4adfb90f68c9eb9bull);
  EXPECT_EQ(sim::derive_seed(1, 0), 0x910a2dec89025cc1ull);
  EXPECT_EQ(sim::derive_seed(1, 1), 0xbeeb8da1658eec67ull);
  EXPECT_EQ(sim::derive_seed(1, 2), 0xf893a2eefb32555eull);
  EXPECT_EQ(sim::derive_seed(42, 7), 0xccf635ee9e9e2fa4ull);
}

TEST(SeedDerivationTest, DistinctAcrossIndices) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(sim::derive_seed(1, i));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(SeedDerivationTest, DistinctAcrossBaseSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 100; ++base) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      seen.insert(sim::derive_seed(base, i));
    }
  }
  // Nearby (base, index) pairs collide in the *input* (base+1, i) ==
  // (base, i+phi) only when the golden-ratio stride aligns, which it never
  // does for small values; the mix keeps all 10k outputs distinct.
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(SeedDerivationTest, StreamsDiverge) {
  // Adjacent point seeds must not produce correlated Rng streams: compare
  // the first draws of neighbouring points.
  sim::Rng a(sim::derive_seed(1, 0));
  sim::Rng b(sim::derive_seed(1, 1));
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

// --- jobs resolution -------------------------------------------------------

TEST(JobsResolutionTest, FlagWinsOverEnvironment) {
  ::setenv("AEQ_JOBS", "3", 1);
  EXPECT_EQ(resolve_jobs(5), 5u);
  EXPECT_EQ(resolve_jobs(0), 3u);   // falls through to the env var
  EXPECT_EQ(resolve_jobs(-1), 3u);  // non-positive flag = unset
  ::unsetenv("AEQ_JOBS");
  EXPECT_GE(resolve_jobs(0), 1u);   // hardware concurrency, at least 1
}

TEST(JobsResolutionTest, GarbageEnvironmentIgnored) {
  ::setenv("AEQ_JOBS", "zero", 1);
  EXPECT_GE(resolve_jobs(0), 1u);
  ::setenv("AEQ_JOBS", "-4", 1);
  EXPECT_GE(resolve_jobs(0), 1u);
  ::unsetenv("AEQ_JOBS");
}

// --- sweep runner ----------------------------------------------------------

SweepOptions options_with(std::size_t jobs, std::uint64_t base_seed = 1) {
  SweepOptions options;
  options.jobs = jobs;
  options.base_seed = base_seed;
  return options;
}

TEST(SweepRunnerTest, ResultsArriveInSubmissionOrder) {
  SweepRunner sweep(options_with(8));
  for (int i = 0; i < 32; ++i) {
    sweep.submit([i](const PointContext& ctx) {
      PointResult result;
      result.metrics["index"] = static_cast<double>(i);
      result.metrics["ctx_index"] = static_cast<double>(ctx.index);
      return result;
    });
  }
  const auto results = sweep.run();
  ASSERT_EQ(results.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(results[i].metrics.at("index"), i);
    EXPECT_EQ(results[i].metrics.at("ctx_index"), i);
  }
}

TEST(SweepRunnerTest, PointSeedsFollowDerivation) {
  SweepRunner sweep(options_with(4, /*base_seed=*/99));
  std::vector<std::uint64_t> seeds(8, 0);
  for (std::size_t i = 0; i < 8; ++i) {
    sweep.submit([&seeds, i](const PointContext& ctx) {
      seeds[i] = ctx.seed;  // distinct slots — no data race
      return PointResult{};
    });
  }
  sweep.run();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(seeds[i], sim::derive_seed(99, i));
    EXPECT_EQ(sweep.point_seed(i), sim::derive_seed(99, i));
  }
}

// The core determinism contract: structured results (and therefore any
// table rendered from them) are identical for --jobs 1 and --jobs 8.
TEST(SweepRunnerTest, JobCountDoesNotChangeResults) {
  auto run_sweep = [](std::size_t jobs) {
    SweepRunner sweep(options_with(jobs, /*base_seed=*/7));
    for (int i = 0; i < 12; ++i) {
      sweep.submit([](const PointContext& ctx) {
        sim::Rng rng(ctx.seed);
        double acc = 0.0;
        for (int k = 0; k < 1000; ++k) acc += rng.uniform(0.0, 1.0);
        return PointResult::single(
            {static_cast<double>(ctx.index), stats::Cell(acc, 6)});
      });
    }
    return sweep.run();
  };
  const auto serial = run_sweep(1);
  const auto parallel = run_sweep(8);
  ASSERT_EQ(serial.size(), parallel.size());

  stats::Table table_serial({{"i", 6, 0}, {"acc", 14, 6}});
  stats::Table table_parallel(table_serial.columns());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].rows.size(), parallel[i].rows.size());
    table_serial.add_rows(serial[i].rows);
    table_parallel.add_rows(parallel[i].rows);
  }
  EXPECT_EQ(table_serial.to_string(), table_parallel.to_string());
}

// A point run through the sweep must match the same Experiment constructed
// directly with the derived seed — the harness adds no hidden state.
TEST(SweepRunnerTest, MatchesDirectSerialExperiment) {
  auto run_experiment = [](std::uint64_t seed) {
    ExperimentConfig config;
    config.num_hosts = 3;
    config.num_qos = 2;
    config.wfq_weights = {4.0, 1.0};
    config.enable_aequitas = true;
    config.seed = seed;
    config.slo = rpc::SloConfig::make({15.0 / 8 * sim::kUsec, 0.0}, 99.9);
    Experiment experiment(config);
    const auto* sizes = experiment.own(
        std::make_unique<workload::FixedSize>(32 * sim::kKiB));
    workload::GeneratorConfig gen;
    gen.classes = {{rpc::Priority::kPC, 0.7 * sim::gbps(100), sizes, 0.0},
                   {rpc::Priority::kBE, 0.3 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(0, gen, workload::fixed_destination(2));
    experiment.run(1 * sim::kMsec, 2 * sim::kMsec);
    PointResult result;
    result.metrics["completed"] =
        static_cast<double>(experiment.metrics().completed(0));
    result.metrics["p999"] = experiment.metrics().rnl_by_run_qos(0).p999();
    result.metrics["share"] = experiment.metrics().admitted_share(0);
    return result;
  };

  SweepRunner sweep(options_with(4, /*base_seed=*/5));
  for (int i = 0; i < 4; ++i) {
    sweep.submit(
        [&](const PointContext& ctx) { return run_experiment(ctx.seed); });
  }
  const auto results = sweep.run();
  for (std::size_t i = 0; i < 4; ++i) {
    const PointResult direct = run_experiment(sim::derive_seed(5, i));
    EXPECT_EQ(results[i].metrics, direct.metrics) << "point " << i;
  }
}

TEST(SweepRunnerTest, LowestIndexExceptionWins) {
  SweepRunner sweep(options_with(4));
  for (int i = 0; i < 8; ++i) {
    sweep.submit([i](const PointContext&) -> PointResult {
      if (i == 3 || i == 5) {
        throw std::runtime_error("point " + std::to_string(i));
      }
      return PointResult{};
    });
  }
  try {
    sweep.run();
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "point 3");
  }
}

TEST(SweepRunnerTest, RunTwiceDoesNotReExecutePoints) {
  std::atomic<int> executions{0};
  SweepRunner sweep(options_with(2));
  for (int i = 0; i < 4; ++i) {
    sweep.submit([&executions, i](const PointContext&) {
      executions.fetch_add(1);
      PointResult result;
      result.metrics["i"] = static_cast<double>(i);
      return result;
    });
  }
  const auto first = sweep.run();
  const auto second = sweep.run();
  EXPECT_EQ(executions.load(), 4);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].metrics, second[i].metrics);
  }
}

TEST(ParallelPointsTest, ReturnsRichPayloadsInOrder) {
  const auto values = parallel_points(
      10, 4, [](std::size_t index) { return std::vector<int>(index, 1); });
  ASSERT_EQ(values.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(values[i].size(), i);
  }
}

TEST(ParallelPointsTest, MoreJobsThanPoints) {
  const auto values =
      parallel_points(2, 16, [](std::size_t index) { return index * 3; });
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 0u);
  EXPECT_EQ(values[1], 3u);
}

}  // namespace
}  // namespace aeq::runner
