// Unit tests for the Aequitas admission controller (Algorithm 1): coin-flip
// admission, the AI window discipline, size-proportional MD, the floor, the
// scavenger class, and per-(dst, QoS) state independence.
#include <gtest/gtest.h>

#include "core/aequitas.h"

namespace aeq::core {
namespace {

AequitasConfig make_config(double target_us = 15.0, double pctl = 99.9,
                           std::size_t num_qos = 3) {
  AequitasConfig config;
  std::vector<sim::Time> targets(num_qos, target_us * sim::kUsec);
  std::vector<double> pctls(num_qos, pctl);
  config.slo.latency_target_per_mtu = targets;
  config.slo.target_percentile = pctls;
  return config;
}

TEST(AequitasTest, StartsFullyAdmitting) {
  AequitasController c(make_config(), sim::Rng(1));
  EXPECT_DOUBLE_EQ(c.p_admit(1, 0), 1.0);
  const auto decision = c.admit(0.0, 0, 1, net::kQoSHigh, 4096);
  EXPECT_EQ(decision.qos_run, net::kQoSHigh);
  EXPECT_FALSE(decision.downgraded);
}

TEST(AequitasTest, LowestQosNeverGated) {
  AequitasController c(make_config(), sim::Rng(1));
  // Hammer the controller with misses on the lowest QoS: nothing changes.
  for (int i = 0; i < 100; ++i) {
    c.on_completion(i * 1e-3, 0, 1, net::kQoSLow, net::kQoSLow, 1.0, 1);
    const auto decision = c.admit(i * 1e-3, 0, 1, net::kQoSLow, 4096);
    EXPECT_EQ(decision.qos_run, net::kQoSLow);
    EXPECT_FALSE(decision.downgraded);
  }
}

TEST(AequitasTest, IncrementWindowFollowsPercentile) {
  // window = target * 100 / (100 - pctl): 15us @ p99.9 -> 15ms; @ p99 -> 1.5ms.
  AequitasController tail999(make_config(15.0, 99.9), sim::Rng(1));
  AequitasController tail99(make_config(15.0, 99.0), sim::Rng(1));
  EXPECT_NEAR(tail999.increment_window(0), 15 * sim::kMsec, 1e-12);
  EXPECT_NEAR(tail99.increment_window(0), 1.5 * sim::kMsec, 1e-12);
}

TEST(AequitasTest, MultiplicativeDecreaseProportionalToSize) {
  AequitasController c(make_config(), sim::Rng(1));
  const sim::Time miss = 1.0;  // way over any target
  c.on_completion(0.0, 0, 1, net::kQoSHigh, net::kQoSHigh, miss, 10);
  EXPECT_NEAR(c.p_admit(1, net::kQoSHigh), 1.0 - 0.01 * 10, 1e-12);
  c.on_completion(0.0, 0, 1, net::kQoSHigh, net::kQoSHigh, miss, 1);
  EXPECT_NEAR(c.p_admit(1, net::kQoSHigh), 1.0 - 0.01 * 11, 1e-12);
}

TEST(AequitasTest, DecreaseFloorsAtConfiguredMinimum) {
  auto config = make_config();
  config.p_admit_floor = 0.05;
  AequitasController c(config, sim::Rng(1));
  for (int i = 0; i < 500; ++i) {
    c.on_completion(0.0, 0, 1, net::kQoSHigh, net::kQoSHigh, 1.0, 8);
  }
  EXPECT_DOUBLE_EQ(c.p_admit(1, net::kQoSHigh), 0.05);
}

TEST(AequitasTest, AdditiveIncreaseAtMostOncePerWindow) {
  AequitasController c(make_config(), sim::Rng(1));
  // Knock p_admit down, then feed many fast completions within one window.
  c.on_completion(0.0, 0, 1, net::kQoSHigh, net::kQoSHigh, 1.0, 50);  // 0.5
  const double after_md = c.p_admit(1, net::kQoSHigh);
  const sim::Time window = c.increment_window(net::kQoSHigh);
  for (int i = 1; i <= 100; ++i) {
    c.on_completion(window + i * 1e-9, 0, 1, net::kQoSHigh, net::kQoSHigh,
                    1 * sim::kUsec, 1);
  }
  // Exactly one increment despite 100 under-target completions.
  EXPECT_NEAR(c.p_admit(1, net::kQoSHigh), after_md + 0.01, 1e-12);
  // The next window allows one more.
  c.on_completion(2.5 * window, 0, 1, net::kQoSHigh, net::kQoSHigh,
                  1 * sim::kUsec, 1);
  EXPECT_NEAR(c.p_admit(1, net::kQoSHigh), after_md + 0.02, 1e-12);
}

TEST(AequitasTest, SizeNormalizedComparison) {
  // A 10-MTU RPC with rnl just under 10*target is on time; just over misses.
  AequitasController c(make_config(15.0), sim::Rng(1));
  const sim::Time target = 15 * sim::kUsec;
  c.on_completion(1.0, 0, 1, net::kQoSHigh, net::kQoSHigh,
                  10 * target * 1.01, 10);
  EXPECT_LT(c.p_admit(1, net::kQoSHigh), 1.0);
  AequitasController c2(make_config(15.0), sim::Rng(1));
  c2.on_completion(1.0, 0, 1, net::kQoSHigh, net::kQoSHigh,
                   10 * target * 0.99, 10);
  EXPECT_DOUBLE_EQ(c2.p_admit(1, net::kQoSHigh), 1.0);
}

TEST(AequitasTest, PAdmitClampedToOne) {
  AequitasController c(make_config(), sim::Rng(1));
  const sim::Time window = c.increment_window(net::kQoSHigh);
  for (int i = 1; i <= 10; ++i) {
    c.on_completion(i * 2 * window, 0, 1, net::kQoSHigh, net::kQoSHigh,
                    1 * sim::kUsec, 1);
  }
  EXPECT_DOUBLE_EQ(c.p_admit(1, net::kQoSHigh), 1.0);
}

TEST(AequitasTest, DowngradeGoesToLowestQos) {
  auto config = make_config();
  config.p_admit_floor = 0.0;
  AequitasController c(config, sim::Rng(7));
  for (int i = 0; i < 200; ++i) {
    c.on_completion(0.0, 0, 1, net::kQoSHigh, net::kQoSHigh, 1.0, 8);
  }
  int downgrades = 0;
  for (int i = 0; i < 100; ++i) {
    const auto decision = c.admit(0.0, 0, 1, net::kQoSHigh, 4096);
    if (decision.downgraded) {
      EXPECT_EQ(decision.qos_run, 2);  // lowest of 3 levels
      ++downgrades;
    }
  }
  EXPECT_EQ(downgrades, 100);  // p_admit == 0 => everything demoted
}

// Regression: admit() used `uniform() <= p_admit`, which admits with
// nonzero probability even at p_admit == 0 because uniform() can draw
// exactly 0 (and it skews every probability by one ulp's worth of mass).
// With uniform() in [0, 1), strict `<` is the faithful Bernoulli draw:
// p_admit == 0 must always downgrade, no matter the seed or draw count.
TEST(AequitasTest, ZeroAdmitProbabilityAlwaysDowngrades) {
  auto config = make_config();
  config.p_admit_floor = 0.0;
  config.beta_per_mtu = 1.0;
  for (const std::uint64_t seed : {1ull, 42ull, 1234567ull}) {
    AequitasController c(config, sim::Rng(seed));
    c.on_completion(0.0, 0, 1, net::kQoSHigh, net::kQoSHigh,
                    /*rnl=*/1.0, 1);  // hard miss
    ASSERT_DOUBLE_EQ(c.p_admit(1, net::kQoSHigh), 0.0);
    for (int i = 0; i < 20000; ++i) {
      const auto decision = c.admit(0.0, 0, 1, net::kQoSHigh, 4096);
      ASSERT_TRUE(decision.downgraded) << "seed " << seed << " draw " << i;
      ASSERT_EQ(decision.qos_run, 2);
    }
  }
}

TEST(AequitasTest, AdmitFractionTracksPAdmit) {
  AequitasConfig config = make_config();
  AequitasController c(config, sim::Rng(11));
  // Force p to ~0.3 via MD: 70 misses of 1 MTU.
  for (int i = 0; i < 70; ++i) {
    c.on_completion(0.0, 0, 1, net::kQoSHigh, net::kQoSHigh, 1.0, 1);
  }
  EXPECT_NEAR(c.p_admit(1, net::kQoSHigh), 0.3, 1e-9);
  int admitted = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (!c.admit(0.0, 0, 1, net::kQoSHigh, 4096).downgraded) ++admitted;
  }
  EXPECT_NEAR(static_cast<double>(admitted) / trials, 0.3, 0.02);
}

TEST(AequitasTest, StatePerDestinationAndQos) {
  AequitasController c(make_config(), sim::Rng(1));
  c.on_completion(0.0, 0, /*dst=*/1, net::kQoSHigh, net::kQoSHigh, 1.0, 10);
  c.on_completion(0.0, 0, /*dst=*/2, net::kQoSMid, net::kQoSMid, 1.0, 5);
  EXPECT_NEAR(c.p_admit(1, net::kQoSHigh), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(c.p_admit(2, net::kQoSHigh), 1.0);
  EXPECT_NEAR(c.p_admit(2, net::kQoSMid), 0.95, 1e-12);
  EXPECT_DOUBLE_EQ(c.p_admit(1, net::kQoSMid), 1.0);
}

TEST(AequitasTest, TwoQosConfiguration) {
  AequitasConfig config;
  config.slo.latency_target_per_mtu = {15 * sim::kUsec, 0.0};
  config.slo.target_percentile = {99.9, 99.9};
  AequitasController c(config, sim::Rng(3));
  // QoS_l (level 1) is the lowest: never gated.
  const auto low = c.admit(0.0, 0, 1, 1, 4096);
  EXPECT_EQ(low.qos_run, 1);
  // QoS_h downgrades to level 1.
  for (int i = 0; i < 200; ++i) c.on_completion(0.0, 0, 1, 0, 0, 1.0, 8);
  int seen_downgrade = 0;
  for (int i = 0; i < 50; ++i) {
    if (c.admit(0.0, 0, 1, 0, 4096).downgraded) ++seen_downgrade;
  }
  EXPECT_GT(seen_downgrade, 30);
}

}  // namespace
}  // namespace aeq::core
