// Integration tests for ports, links, switches, hosts and the topology
// builders: delivery latency, serialization, routing, WFQ behaviour at a
// port under the simulator clock.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fifo_queue.h"
#include "net/host.h"
#include "net/port.h"
#include "net/switch.h"
#include "net/wfq.h"
#include "sim/simulator.h"
#include "topo/builders.h"

namespace aeq::net {
namespace {

class Collector final : public PacketSink {
 public:
  void receive(const Packet& packet) override { packets.push_back(packet); }
  std::vector<Packet> packets;
};

Packet data_packet(HostId src, HostId dst, std::uint32_t size,
                   QoSLevel qos = 0, std::uint64_t flow = 1) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.size_bytes = size;
  p.qos = qos;
  p.flow_id = flow;
  return p;
}

TEST(PortTest, DeliversAfterSerializationPlusPropagation) {
  sim::Simulator s;
  Collector sink;
  // 12500 bytes at 100Gbps = 1us serialization; 0.5us propagation.
  Port port(s, sim::gbps(100), 0.5 * sim::kUsec,
            std::make_unique<FifoQueue>());
  port.connect(&sink);
  port.send(data_packet(0, 1, 12500));
  s.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_DOUBLE_EQ(s.now(), 1.5 * sim::kUsec);
  EXPECT_DOUBLE_EQ(port.busy_time(), 1.0 * sim::kUsec);
}


TEST(PortTest, BusyTimeMidTransmissionCountsOnlyElapsedTime) {
  sim::Simulator s;
  Collector sink;
  // 12500 bytes at 100Gbps = 1us serialization.
  Port port(s, sim::gbps(100), 0.0, std::make_unique<FifoQueue>());
  port.connect(&sink);
  s.schedule_at(0.0, [&] { port.send(data_packet(0, 1, 12500)); });
  // Mid-transmission the port must report only the elapsed busy time —
  // charging the full serialization up front would make utilization(now)
  // exceed 1 and over-account partially transmitted packets.
  s.schedule_at(0.4 * sim::kUsec, [&] {
    EXPECT_DOUBLE_EQ(port.busy_time(), 0.4 * sim::kUsec);
    EXPECT_NEAR(port.utilization(s.now()), 1.0, 1e-12);
  });
  s.run();
  EXPECT_DOUBLE_EQ(port.busy_time(), 1.0 * sim::kUsec);
}

TEST(PortTest, UtilizationNeverExceedsOneMidBurst) {
  sim::Simulator s;
  Collector sink;
  Port port(s, sim::gbps(100), 0.0, std::make_unique<FifoQueue>());
  port.connect(&sink);
  // Queue a 10-packet burst, then sample utilization at odd times while
  // the port drains it.
  s.schedule_at(0.0, [&] {
    for (int i = 0; i < 10; ++i) port.send(data_packet(0, 1, 12500));
  });
  for (double t : {0.3, 1.7, 4.25, 9.99}) {
    s.schedule_at(t * sim::kUsec, [&port, &s] {
      EXPECT_LE(port.utilization(s.now()), 1.0 + 1e-12);
    });
  }
  s.run();
  EXPECT_DOUBLE_EQ(port.busy_time(), 10.0 * sim::kUsec);
}

TEST(PortTest, BackToBackPacketsSerializeSequentially) {
  sim::Simulator s;
  Collector sink;
  Port port(s, sim::gbps(100), 0.0, std::make_unique<FifoQueue>());
  port.connect(&sink);
  for (int i = 0; i < 3; ++i) port.send(data_packet(0, 1, 12500));
  s.run();
  ASSERT_EQ(sink.packets.size(), 3u);
  EXPECT_DOUBLE_EQ(s.now(), 3.0 * sim::kUsec);
  EXPECT_NEAR(port.utilization(s.now()), 1.0, 1e-9);
}

TEST(PortTest, WfqOrderingUnderBacklog) {
  sim::Simulator s;
  Collector sink;
  Port port(s, sim::gbps(100), 0.0,
            std::make_unique<WfqQueue>(std::vector<double>{4.0, 1.0}));
  port.connect(&sink);
  // Interleave enqueues while the port is busy with the first packet.
  port.send(data_packet(0, 1, 1000, 0));
  for (int i = 0; i < 10; ++i) {
    port.send(data_packet(0, 1, 1000, 1));
    port.send(data_packet(0, 1, 1000, 0));
  }
  s.run();
  ASSERT_EQ(sink.packets.size(), 21u);
  // In the first 10 deliveries after the head packet, the high class (4:1)
  // should get ~8.
  int high = 0;
  for (int i = 1; i <= 10; ++i) {
    if (sink.packets[static_cast<std::size_t>(i)].qos == 0) ++high;
  }
  EXPECT_GE(high, 7);
}

TEST(SwitchTest, RoutesByDestination) {
  sim::Simulator s;
  Switch sw("sw");
  Collector sink0, sink1;
  auto p0 = std::make_unique<Port>(s, sim::gbps(100), 0.0,
                                   std::make_unique<FifoQueue>());
  p0->connect(&sink0);
  auto p1 = std::make_unique<Port>(s, sim::gbps(100), 0.0,
                                   std::make_unique<FifoQueue>());
  p1->connect(&sink1);
  sw.set_route(0, sw.add_port(std::move(p0)));
  sw.set_route(1, sw.add_port(std::move(p1)));

  sw.receive(data_packet(1, 0, 100));
  sw.receive(data_packet(0, 1, 100));
  sw.receive(data_packet(0, 1, 100));
  s.run();
  EXPECT_EQ(sink0.packets.size(), 1u);
  EXPECT_EQ(sink1.packets.size(), 2u);
}

TEST(SwitchTest, EcmpKeepsFlowOnOnePath) {
  sim::Simulator s;
  Switch sw("sw");
  Collector sinks[2];
  std::vector<std::size_t> ports;
  for (auto& sink : sinks) {
    auto p = std::make_unique<Port>(s, sim::gbps(100), 0.0,
                                    std::make_unique<FifoQueue>());
    p->connect(&sink);
    ports.push_back(sw.add_port(std::move(p)));
  }
  sw.set_ecmp_route(7, ports);
  for (int i = 0; i < 20; ++i) sw.receive(data_packet(0, 7, 100, 0, 42));
  s.run();
  // All packets of flow 42 take the same uplink.
  EXPECT_TRUE(sinks[0].packets.empty() || sinks[1].packets.empty());
  EXPECT_EQ(sinks[0].packets.size() + sinks[1].packets.size(), 20u);
}

TEST(SwitchTest, EcmpSpreadsDistinctFlows) {
  sim::Simulator s;
  Switch sw("sw");
  Collector sinks[2];
  std::vector<std::size_t> ports;
  for (auto& sink : sinks) {
    auto p = std::make_unique<Port>(s, sim::gbps(100), 0.0,
                                    std::make_unique<FifoQueue>());
    p->connect(&sink);
    ports.push_back(sw.add_port(std::move(p)));
  }
  sw.set_ecmp_route(7, ports);
  for (std::uint64_t flow = 1; flow <= 200; ++flow) {
    sw.receive(data_packet(0, 7, 100, 0, flow));
  }
  s.run();
  EXPECT_GT(sinks[0].packets.size(), 50u);
  EXPECT_GT(sinks[1].packets.size(), 50u);
}

TEST(StarTopologyTest, HostToHostDelivery) {
  sim::Simulator s;
  topo::StarConfig config;
  config.num_hosts = 4;
  topo::Network network = topo::build_star(s, config);
  ASSERT_EQ(network.num_hosts(), 4u);

  std::vector<Packet> delivered;
  network.host(2).set_delivery_handler(
      [&](const Packet& p) { delivered.push_back(p); });
  network.host(0).send(data_packet(0, 2, 4096));
  s.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].src, 0);
  // Two hops: 2 serializations (4096B @100G = 0.33us) + 2 propagations.
  EXPECT_NEAR(s.now(),
              2 * (4096 / sim::gbps(100)) + 2 * 0.5 * sim::kUsec, 1e-12);
}

TEST(StarTopologyTest, FanInCongestsDownlink) {
  sim::Simulator s;
  topo::StarConfig config;
  config.num_hosts = 5;
  topo::Network network = topo::build_star(s, config);
  int delivered = 0;
  network.host(0).set_delivery_handler([&](const Packet&) { ++delivered; });
  // 4 senders, 10 packets each into host 0: the downlink serializes all 40.
  for (HostId src = 1; src <= 4; ++src) {
    for (int i = 0; i < 10; ++i) {
      network.host(src).send(data_packet(src, 0, 12500));
    }
  }
  s.run();
  EXPECT_EQ(delivered, 40);
  // Downlink busy time: 40 packets * 1us.
  EXPECT_NEAR(network.downlink(0).busy_time(), 40 * sim::kUsec, 1e-12);
}

TEST(LeafSpineTest, CrossLeafDelivery) {
  sim::Simulator s;
  topo::LeafSpineConfig config;
  config.hosts_per_leaf = 2;
  config.num_leaves = 2;
  config.num_spines = 2;
  topo::Network network = topo::build_leaf_spine(s, config);
  ASSERT_EQ(network.num_hosts(), 4u);

  int local = 0, remote = 0;
  network.host(1).set_delivery_handler([&](const Packet&) { ++local; });
  network.host(3).set_delivery_handler([&](const Packet&) { ++remote; });
  network.host(0).send(data_packet(0, 1, 1000));  // same leaf
  network.host(0).send(data_packet(0, 3, 1000));  // via spine
  s.run();
  EXPECT_EQ(local, 1);
  EXPECT_EQ(remote, 1);
}

TEST(LeafSpineTest, AllPairsReachable) {
  sim::Simulator s;
  topo::LeafSpineConfig config;
  config.hosts_per_leaf = 3;
  config.num_leaves = 3;
  config.num_spines = 2;
  topo::Network network = topo::build_leaf_spine(s, config);
  const auto n = static_cast<HostId>(network.num_hosts());
  std::vector<int> received(static_cast<std::size_t>(n), 0);
  for (HostId h = 0; h < n; ++h) {
    network.host(h).set_delivery_handler(
        [&received, h](const Packet&) { ++received[static_cast<std::size_t>(h)]; });
  }
  std::uint64_t flow = 1;
  for (HostId src = 0; src < n; ++src) {
    for (HostId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      network.host(src).send(data_packet(src, dst, 500, 0, flow++));
    }
  }
  s.run();
  for (HostId h = 0; h < n; ++h) {
    EXPECT_EQ(received[static_cast<std::size_t>(h)], n - 1) << "host " << h;
  }
}

}  // namespace
}  // namespace aeq::net
