// Tests for the later substrate additions: the calendar event queue, the
// RED/AQM discipline, Pareto sizes and Zipf destination picking.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "net/red_queue.h"
#include "sim/calendar_queue.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace aeq {
namespace {

TEST(CalendarQueueTest, PopsInTimeOrder) {
  sim::CalendarQueue q;
  std::vector<int> order;
  q.schedule(3e-6, [&] { order.push_back(3); });
  q.schedule(1e-6, [&] { order.push_back(1); });
  q.schedule(2e-6, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().handler();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CalendarQueueTest, TieBreaksByInsertionOrder) {
  sim::CalendarQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(5e-6, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().handler();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(CalendarQueueTest, MatchesHeapQueueOnRandomWorkload) {
  sim::CalendarQueue calendar;
  sim::EventQueue heap;
  sim::Rng rng(42);
  double now = 0.0;
  std::vector<double> calendar_times, heap_times;
  int pending = 0;
  for (int round = 0; round < 20000; ++round) {
    if (pending == 0 || (rng.bernoulli(0.55) && pending < 5000)) {
      // Mixed horizons: dense near-term + sparse far-future events.
      const double t =
          now + (rng.bernoulli(0.9) ? rng.exponential(2e-6)
                                    : rng.uniform(1e-3, 5e-3));
      calendar.schedule(t, [] {});
      heap.schedule(t, [] {});
      ++pending;
    } else {
      const double tc = calendar.pop().time;
      const double th = heap.pop().time;
      ASSERT_DOUBLE_EQ(tc, th) << "divergence at round " << round;
      now = th;
      --pending;
      calendar_times.push_back(tc);
      heap_times.push_back(th);
    }
    ASSERT_EQ(calendar.size(), heap.size());
  }
  EXPECT_TRUE(std::is_sorted(calendar_times.begin(), calendar_times.end()));
}

TEST(CalendarQueueTest, CancelSkipsEvent) {
  sim::CalendarQueue q;
  bool ran = false;
  auto id = q.schedule(1e-6, [&] { ran = true; });
  q.schedule(2e-6, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  q.pop().handler();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, ResizesUnderLoadAndStaysCorrect) {
  sim::CalendarQueue q(1e-6, 4);  // tiny start: forces several doublings
  sim::Rng rng(7);
  for (int i = 0; i < 5000; ++i) q.schedule(rng.uniform(0, 1e-3), [] {});
  EXPECT_GT(q.num_buckets(), 4u);
  double last = -1.0;
  while (!q.empty()) {
    const double t = q.pop().time;
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST(RedQueueTest, NoDropsBelowMinThreshold) {
  net::RedConfig config;
  config.min_threshold_bytes = 10000;
  net::RedQueue q(config);
  net::Packet p;
  p.size_bytes = 1000;
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.enqueue(p));
  EXPECT_EQ(q.stats().dropped_packets, 0u);
}

TEST(RedQueueTest, ProbabilisticDropsBetweenThresholds) {
  net::RedConfig config;
  config.capacity_bytes = 1 << 20;
  config.min_threshold_bytes = 10000;
  config.max_threshold_bytes = 100000;
  config.max_drop_probability = 0.5;
  config.ewma_weight = 1.0;  // react instantly for the test
  net::RedQueue q(config);
  net::Packet p;
  p.size_bytes = 1000;
  // Fill to ~55K (drops possible on the way up: keep pushing), then hold
  // the queue there and expect ~25% drops.
  int drops = 0;
  const int trials = 4000;
  while (q.backlog_bytes() < 55000) q.enqueue(p);
  for (int i = 0; i < trials; ++i) {
    if (!q.enqueue(p)) {
      ++drops;
    } else {
      q.dequeue();  // keep the backlog steady
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / trials, 0.25, 0.06);
}

TEST(RedQueueTest, HardDropAtCapacity) {
  net::RedConfig config;
  config.capacity_bytes = 3000;
  config.min_threshold_bytes = 1000;
  config.max_threshold_bytes = 2999;
  config.ewma_weight = 0.001;  // keep the average low: no early drops
  net::RedQueue q(config);
  net::Packet p;
  p.size_bytes = 1000;
  EXPECT_TRUE(q.enqueue(p));
  EXPECT_TRUE(q.enqueue(p));
  EXPECT_TRUE(q.enqueue(p));
  EXPECT_FALSE(q.enqueue(p));  // 4000 > 3000
}

TEST(ParetoSizeTest, BoundsAndMeanMatchSamples) {
  workload::ParetoSize dist(1.2, 1024, 1 << 20);
  sim::Rng rng(3);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto x = dist.sample(rng);
    ASSERT_GE(x, 1024u);
    ASSERT_LE(x, static_cast<std::uint64_t>(1) << 20);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / n / dist.mean_bytes(), 1.0, 0.05);
}

TEST(ParetoSizeTest, HeavierAlphaMeansLighterTail) {
  workload::ParetoSize heavy(1.1, 1024, 1 << 20);
  workload::ParetoSize light(2.5, 1024, 1 << 20);
  EXPECT_GT(heavy.mean_bytes(), light.mean_bytes());
}

TEST(ZipfDestinationsTest, SkewsTowardLowRanksAndAvoidsSelf) {
  sim::Rng rng(11);
  auto pick = workload::zipf_destinations(16, /*self=*/0, 1.0);
  std::map<net::HostId, int> counts;
  for (int i = 0; i < 40000; ++i) {
    const net::HostId dst = pick(rng);
    ASSERT_NE(dst, 0);
    ASSERT_GE(dst, 0);
    ASSERT_LT(dst, 16);
    ++counts[dst];
  }
  // Rank 1 (self=0 redirects its mass to host 1) must dominate rank 15.
  EXPECT_GT(counts[1], 5 * counts[15]);
  // Monotone-ish decay across a few ranks.
  EXPECT_GT(counts[2], counts[8]);
}

}  // namespace
}  // namespace aeq
