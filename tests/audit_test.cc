// Tests for the invariant-audit layer: AEQ_CHECK_* failure reporting, the
// Auditor registry, the check catalogue over real components, a
// deliberately broken queue double proving conservation violations are
// caught, and audited end-to-end runs across every discipline and both
// scheduler backends.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "audit/checks.h"
#include "net/pfabric_queue.h"
#include "net/queue.h"
#include "net/red_queue.h"
#include "net/shared_buffer.h"
#include "net/wfq.h"
#include "runner/experiment.h"
#include "transport/dctcp.h"
#include "transport/swift.h"

namespace aeq {
namespace {

net::Packet make_packet(std::uint32_t bytes, net::QoSLevel qos = 0,
                        std::uint64_t seq = 0) {
  net::Packet p;
  p.size_bytes = bytes;
  p.qos = qos;
  p.seq = seq;
  p.cold.msg_bytes = bytes;
  return p;
}

// --- AEQ_CHECK_* macros ---------------------------------------------------

TEST(CheckMacros, PassingComparisonsAreSilent) {
  AEQ_CHECK_EQ(2 + 2, 4);
  AEQ_CHECK_NE(1, 2);
  AEQ_CHECK_LE(1.0, 1.0);
  AEQ_CHECK_LT(1u, 2u);
  AEQ_CHECK_GE(5, 5);
  AEQ_CHECK_GT(0.2, 0.1);
  AEQ_CHECK_EQ_MSG(std::size_t{3}, 3u, "never printed");
}

TEST(CheckMacros, OperandsEvaluateExactlyOnce) {
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  AEQ_CHECK_LE(next(), 10);
  EXPECT_EQ(calls, 1);
}

TEST(CheckMacrosDeathTest, FailureReportPrintsBothOperands) {
  const std::uint64_t lhs = 3, rhs = 5;
  EXPECT_DEATH(AEQ_CHECK_EQ(lhs, rhs), "lhs == rhs \\(3 vs 5\\)");
  const double x = 1.5;
  EXPECT_DEATH(AEQ_CHECK_GE_MSG(x, 2.0, "window too small"),
               "\\(1\\.5 vs 2\\).*window too small");
}

TEST(CheckMacrosDeathTest, CharSizedOperandsPrintAsNumbers) {
  const net::QoSLevel qos = 7;  // uint8_t: must print "7", not a glyph
  EXPECT_DEATH(AEQ_CHECK_LT(qos, net::QoSLevel{3}), "\\(7 vs 3\\)");
}

TEST(CheckMacrosDeathTest, FailureReportCarriesSimulatedTime) {
  sim::Simulator simulator;
  simulator.schedule_at(2.5, [] { AEQ_CHECK_EQ(1, 2); });
  EXPECT_DEATH(simulator.run(), "t=2\\.5s");
}

// --- Auditor registry -----------------------------------------------------

TEST(Auditor, RunAllEvaluatesEveryCheckInOrder) {
  audit::Auditor auditor;
  std::vector<int> order;
  auditor.add_check("a", "first", [&order] { order.push_back(1); });
  auditor.add_check("b", "second", [&order] { order.push_back(2); });
  EXPECT_EQ(auditor.num_checks(), 2u);
  auditor.run_all();
  auditor.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
  EXPECT_EQ(auditor.passes(), 2u);
}

TEST(Auditor, ReportCountsEvaluationsPerCheck) {
  audit::Auditor auditor;
  auditor.add_check("queue", "conservation", [] {});
  auditor.add_check("queue", "bounds", [] {});
  auditor.add_check("sim", "monotone", [] {});
  auditor.run_all();
  auditor.run_all();
  auditor.run_all();
  const audit::Report report = auditor.report();
  ASSERT_EQ(report.entries.size(), 3u);
  EXPECT_EQ(report.total_evaluations, 9u);
  EXPECT_EQ(report.num_components(), 2u);
  for (const auto& entry : report.entries) EXPECT_EQ(entry.evaluations, 3u);
  std::ostringstream os;
  report.write(os);
  EXPECT_NE(os.str().find("queue/conservation"), std::string::npos);
  EXPECT_NE(os.str().find("0 violations"), std::string::npos);
}

TEST(Auditor, ReportOrderIsSortedIndependentOfRegistration) {
  // Registration order is construction order and shifts under refactors;
  // the report contract (DESIGN.md §12) is explicit (component, name)
  // ordering so serialized reports stay diffable.
  audit::Auditor auditor;
  auditor.add_check("zeta", "late", [] {});
  auditor.add_check("alpha", "second", [] {});
  auditor.add_check("queue", "conservation", [] {});
  auditor.add_check("alpha", "first", [] {});
  auditor.run_all();
  const audit::Report report = auditor.report();
  ASSERT_EQ(report.entries.size(), 4u);
  EXPECT_EQ(report.entries[0].component, "alpha");
  EXPECT_EQ(report.entries[0].name, "first");
  EXPECT_EQ(report.entries[1].component, "alpha");
  EXPECT_EQ(report.entries[1].name, "second");
  EXPECT_EQ(report.entries[2].component, "queue");
  EXPECT_EQ(report.entries[3].component, "zeta");
  std::ostringstream os;
  report.write(os);
  const std::string text = os.str();
  EXPECT_LT(text.find("alpha/first"), text.find("alpha/second"));
  EXPECT_LT(text.find("alpha/second"), text.find("queue/conservation"));
  EXPECT_LT(text.find("queue/conservation"), text.find("zeta/late"));
}

TEST(AuditorDeathTest, FailureNamesTheViolatedCheck) {
  audit::Auditor auditor;
  auditor.add_check("wfq", "tag-order", [] { AEQ_CHECK_LT(9, 1); });
  EXPECT_DEATH(auditor.run_all(), "audit check: wfq/tag-order");
}

// --- Broken-queue double: conservation violations are caught --------------

// Accepts (and counts) every packet but silently discards every third one
// instead of storing it — exactly the accounting bug the conservation
// invariant exists to catch.
class LeakyQueue final : public net::QueueDiscipline {
 public:
  bool enqueue(const net::Packet& packet) override {
    count_offered(packet);
    count_enqueued(packet);
    if (++arrivals_ % 3 == 0) return true;  // leaked: accepted, never stored
    stored_.push_back(packet);
    backlog_bytes_ += packet.size_bytes;
    return true;
  }
  std::optional<net::Packet> dequeue() override {
    if (stored_.empty()) return std::nullopt;
    net::Packet packet = stored_.front();
    stored_.erase(stored_.begin());
    backlog_bytes_ -= packet.size_bytes;
    count_dequeued(packet);
    return packet;
  }
  bool empty() const override { return stored_.empty(); }
  std::uint64_t backlog_bytes() const override { return backlog_bytes_; }
  std::uint64_t backlog_packets() const override { return stored_.size(); }

 private:
  std::vector<net::Packet> stored_;
  std::uint64_t backlog_bytes_ = 0;
  std::uint64_t arrivals_ = 0;
};

TEST(AuditorDeathTest, LeakyQueueTripsConservation) {
  LeakyQueue queue;
  audit::Auditor auditor;
  audit::register_queue_checks(auditor, "leaky", queue, 2);
  for (int i = 0; i < 6; ++i) queue.enqueue(make_packet(1000));
  EXPECT_DEATH(auditor.run_all(),
               "leaky/conservation-packets.*queue lost or invented packets");
}

// --- Catalogue over real components ---------------------------------------

TEST(Checks, WellBehavedQueuesPassConservation) {
  net::RedConfig red_config;
  red_config.capacity_bytes = 64 * 1024;
  red_config.min_threshold_bytes = 8 * 1024;
  red_config.max_threshold_bytes = 32 * 1024;
  net::RedQueue red(red_config);
  net::WfqQueue wfq({4.0, 1.0}, 64 * 1024);
  net::PfabricQueue pfabric(16 * 1024);

  audit::Auditor auditor;
  audit::register_queue_checks(auditor, "red", red, 2);
  audit::register_queue_checks(auditor, "wfq", wfq, 2);
  audit::register_queue_checks(auditor, "pfabric", pfabric, 2);
  // WFQ tag checks were attached automatically by the dynamic type probe.
  EXPECT_GT(auditor.num_checks(), 9u);

  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto qos = static_cast<net::QoSLevel>(i % 2);
    red.enqueue(make_packet(1500, qos, i));
    wfq.enqueue(make_packet(1500, qos, i));
    net::Packet p = make_packet(1500, qos, i);
    p.cold.msg_bytes = (i % 7 + 1) * 1500;  // varied remaining size -> evictions
    pfabric.enqueue(p);
    auditor.run_all();
    if (i % 3 == 0) {
      red.dequeue();
      wfq.dequeue();
      pfabric.dequeue();
      auditor.run_all();
    }
  }
  EXPECT_GT(pfabric.stats().dropped_packets, 0u);  // evictions happened
  EXPECT_GT(auditor.report().total_evaluations, 0u);
}

TEST(Checks, PooledPfabricKeepsPoolConservation) {
  // Regression: pFabric evictions must release their pool reservation (and
  // be folded into the decorator's drop counters), otherwise the pool leaks
  // until nothing can be admitted.
  net::SharedBufferPool pool(32 * 1024);
  auto pooled = std::make_unique<net::PooledQueue>(
      std::make_unique<net::PfabricQueue>(8 * 1024), pool);
  audit::Auditor auditor;
  audit::register_pool_checks(auditor, "pool", pool, {pooled.get()});
  audit::register_queue_checks(auditor, "pooled-pfabric", *pooled, 2);
  for (std::uint64_t i = 0; i < 100; ++i) {
    net::Packet p = make_packet(1500, 0, i);
    p.cold.msg_bytes = (i % 9 + 1) * 1500;
    pooled->enqueue(p);
    auditor.run_all();
  }
  while (pooled->dequeue()) auditor.run_all();
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_GT(pooled->stats().dropped_packets, 0u);
}

TEST(Checks, CongestionControlInvariantsPass) {
  transport::SwiftCC swift{transport::SwiftConfig{}};
  transport::DctcpCC dctcp{transport::DctcpConfig{}};
  for (int i = 0; i < 50; ++i) {
    swift.on_ack(i * 1e-5, 8 * sim::kUsec, 1.0, false);
    dctcp.on_ack(i * 1e-5, 8 * sim::kUsec, 1.0, i % 4 == 0);
    swift.audit_invariants();
    dctcp.audit_invariants();
  }
  swift.on_loss(1.0);
  dctcp.on_loss(1.0);
  swift.on_idle_restart();
  dctcp.on_idle_restart();
  swift.audit_invariants();
  dctcp.audit_invariants();
}

// --- Audited end-to-end runs ----------------------------------------------

runner::ExperimentConfig audited_config(net::SchedulerType scheduler,
                                        sim::SchedulerBackend backend) {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  config.scheduler = scheduler;
  config.scheduler_backend = backend;
  config.buffer_bytes = 256 * 1024;  // small enough to exercise drops
  config.slo = rpc::SloConfig::make({15.0 / 8 * sim::kUsec, 0.0}, 99.9);
  config.audit = true;
  config.audit_interval = 100 * sim::kUsec;
  return config;
}

void run_audited(runner::Experiment& experiment) {
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  workload::GeneratorConfig gen;
  gen.classes = {{rpc::Priority::kPC, 0.6 * sim::gbps(100), sizes, 0.0},
                 {rpc::Priority::kBE, 0.5 * sim::gbps(100), sizes, 0.0}};
  experiment.add_generator(0, gen, workload::fixed_destination(2));
  experiment.add_generator(1, gen, workload::fixed_destination(2));
  experiment.run(0.0, 3 * sim::kMsec);
}

TEST(AuditedRuns, EveryDisciplineOnBothBackendsRunsClean) {
  const net::SchedulerType disciplines[] = {
      net::SchedulerType::kFifo, net::SchedulerType::kWfq,
      net::SchedulerType::kDwrr, net::SchedulerType::kSpq,
      net::SchedulerType::kPfabric};
  const sim::SchedulerBackend backends[] = {sim::SchedulerBackend::kHeap,
                                            sim::SchedulerBackend::kCalendar};
  for (const auto scheduler : disciplines) {
    for (const auto backend : backends) {
      SCOPED_TRACE(static_cast<int>(scheduler));
      runner::Experiment experiment(audited_config(scheduler, backend));
      ASSERT_NE(experiment.auditor(), nullptr);
      run_audited(experiment);
      // Reaching here means zero violations (a violation aborts). The
      // registry must actually have swept: periodic passes plus the final
      // post-drain pass.
      EXPECT_GT(experiment.auditor()->passes(), 10u);
      EXPECT_GT(experiment.auditor()->report().total_evaluations, 0u);
    }
  }
}

TEST(AuditedRuns, SharedPoolTopologyRunsClean) {
  auto config = audited_config(net::SchedulerType::kWfq,
                               sim::SchedulerBackend::kCalendar);
  config.per_class_buffer_bytes = 64 * 1024;
  runner::Experiment experiment(config);
  run_audited(experiment);
  EXPECT_GT(experiment.auditor()->passes(), 0u);
}

TEST(AuditedRuns, AuditOffLeavesNoRegistry) {
  auto config = audited_config(net::SchedulerType::kWfq,
                               sim::SchedulerBackend::kCalendar);
  config.audit = false;
  runner::Experiment experiment(config);
  EXPECT_EQ(experiment.auditor(), nullptr);
}

TEST(AuditedRuns, RuntimeDefaultTracksBuildFlag) {
  const runner::ExperimentConfig config;
  EXPECT_EQ(config.audit, audit::kBuildEnabled);
}

}  // namespace
}  // namespace aeq
