// RPC-layer tests: priority->QoS mapping, SLO helpers, metrics accounting
// (mix shares, SLO compliance, outstanding gauges), and end-to-end issue ->
// completion through the experiment harness.
#include <gtest/gtest.h>

#include <memory>

#include "rpc/metrics.h"
#include "rpc/priority.h"
#include "rpc/slo.h"
#include "runner/experiment.h"
#include "workload/size_dist.h"

namespace aeq::rpc {
namespace {

TEST(PriorityTest, BijectiveMappingThreeQos) {
  EXPECT_EQ(qos_for_priority(Priority::kPC, 3), net::kQoSHigh);
  EXPECT_EQ(qos_for_priority(Priority::kNC, 3), net::kQoSMid);
  EXPECT_EQ(qos_for_priority(Priority::kBE, 3), net::kQoSLow);
}

TEST(PriorityTest, TwoQosCollapsesLowClasses) {
  EXPECT_EQ(qos_for_priority(Priority::kPC, 2), 0);
  EXPECT_EQ(qos_for_priority(Priority::kNC, 2), 1);
  EXPECT_EQ(qos_for_priority(Priority::kBE, 2), 1);
}

TEST(SloTest, SizeInMtus) {
  EXPECT_EQ(size_in_mtus(1, 4096), 1u);
  EXPECT_EQ(size_in_mtus(4096, 4096), 1u);
  EXPECT_EQ(size_in_mtus(4097, 4096), 2u);
  EXPECT_EQ(size_in_mtus(32768, 4096), 8u);
  EXPECT_EQ(size_in_mtus(0, 4096), 1u);
}

TEST(SloTest, HasSloForAllButLowest) {
  const auto slo =
      SloConfig::make({15 * sim::kUsec, 25 * sim::kUsec, 0.0}, 99.9);
  EXPECT_TRUE(slo.has_slo(0));
  EXPECT_TRUE(slo.has_slo(1));
  EXPECT_FALSE(slo.has_slo(2));
  EXPECT_DOUBLE_EQ(slo.absolute_target(0, 8), 120 * sim::kUsec);
}

TEST(MetricsTest, MixSharesAndSloAccounting) {
  const auto slo = SloConfig::make({10 * sim::kUsec, 0.0}, 99.9);
  RpcMetrics metrics(2, slo, 4);

  RpcRecord record;
  record.dst = 1;
  record.qos_requested = 0;
  record.qos_run = 0;
  record.bytes = 1000;
  record.size_mtus = 1;
  record.rnl = 5 * sim::kUsec;  // meets 10us
  metrics.on_issue(1, 0, 0, 1000);
  metrics.record(record);

  record.rnl = 50 * sim::kUsec;  // misses
  metrics.on_issue(1, 0, 0, 1000);
  metrics.record(record);

  record.qos_run = 1;  // downgraded
  record.downgraded = true;
  record.rnl = 5 * sim::kUsec;  // still meets its requested-QoS target
  metrics.on_issue(1, 0, 1, 1000);
  metrics.record(record);

  EXPECT_EQ(metrics.slo_eligible(0), 3u);
  EXPECT_EQ(metrics.slo_met(0), 2u);
  EXPECT_NEAR(metrics.slo_met_fraction(0), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(metrics.downgraded(0), 1u);
  EXPECT_NEAR(metrics.admitted_share(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.requested_share(0), 1.0, 1e-12);
  EXPECT_EQ(metrics.total_completed(), 3u);
}

TEST(MetricsTest, TerminatedCountsAsSloMiss) {
  const auto slo = SloConfig::make({10 * sim::kUsec, 0.0}, 99.9);
  RpcMetrics metrics(2, slo, 2);
  RpcRecord record;
  record.dst = 1;
  record.qos_requested = 0;
  record.qos_run = 0;
  record.bytes = 1000;
  record.size_mtus = 1;
  record.terminated = true;
  metrics.on_issue(1, 0, 0, 1000);
  metrics.record(record);
  EXPECT_EQ(metrics.slo_eligible(0), 1u);
  EXPECT_EQ(metrics.slo_met(0), 0u);
  EXPECT_EQ(metrics.terminated(0), 1u);
  EXPECT_EQ(metrics.total_completed(), 0u);
}

TEST(MetricsTest, OutstandingGaugeTracksIssueAndCompletion) {
  const auto slo =
      SloConfig::make({15 * sim::kUsec, 25 * sim::kUsec, 0.0}, 99.9);
  RpcMetrics metrics(3, slo, 3);
  metrics.on_issue(2, 0, 0, 100);
  metrics.on_issue(2, 1, 1, 100);
  metrics.on_issue(2, 2, 2, 100);
  EXPECT_EQ(metrics.outstanding(2, 0), 2);  // QoS_h + QoS_m group
  EXPECT_EQ(metrics.outstanding(2, 1), 1);  // lowest QoS group
  RpcRecord record;
  record.dst = 2;
  record.qos_requested = 0;
  record.qos_run = 0;
  record.bytes = 100;
  record.size_mtus = 1;
  metrics.record(record);
  EXPECT_EQ(metrics.outstanding(2, 0), 1);
}

TEST(MetricsTest, WarmupExcludedFromLatencyButNotTraffic) {
  const auto slo = SloConfig::make({10 * sim::kUsec, 0.0}, 99.9);
  RpcMetrics metrics(2, slo, 2);
  metrics.set_warmup(1.0);
  RpcRecord record;
  record.dst = 1;
  record.qos_requested = 0;
  record.qos_run = 0;
  record.bytes = 1000;
  record.size_mtus = 1;
  record.issued = 0.5;  // during warmup
  record.rnl = 5 * sim::kUsec;
  metrics.on_issue(1, 0, 0, 1000);
  metrics.record(record);
  EXPECT_EQ(metrics.rnl_by_run_qos(0).count(), 0u);
  EXPECT_EQ(metrics.bytes_admitted(0), 1000u);
  record.issued = 2.0;  // after warmup
  metrics.on_issue(1, 0, 0, 1000);
  metrics.record(record);
  EXPECT_EQ(metrics.rnl_by_run_qos(0).count(), 1u);
}

TEST(RpcStackTest, EndToEndIssueCompletesAndNotifiesListener) {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 3;
  config.enable_aequitas = false;
  config.slo = rpc::SloConfig::make(
      {15 * sim::kUsec, 25 * sim::kUsec, 0.0}, 99.9);
  runner::Experiment experiment(config);

  std::vector<RpcRecord> seen;
  experiment.stack(0).set_completion_listener(
      [&](const RpcRecord& r) { seen.push_back(r); });
  experiment.stack(0).issue(1, Priority::kPC, 32 * sim::kKiB);
  experiment.stack(0).issue(2, Priority::kBE, 8 * sim::kKiB);
  experiment.simulator().run();

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].qos_run, net::kQoSHigh);
  EXPECT_EQ(seen[1].qos_run, net::kQoSLow);
  EXPECT_GT(seen[0].rnl, 0.0);
  EXPECT_EQ(seen[0].size_mtus, 8u);
  EXPECT_EQ(experiment.metrics().total_completed(), 2u);
}

TEST(RpcStackTest, DowngradeVisibleToApplication) {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 3;
  config.enable_aequitas = true;
  config.p_admit_floor = 0.0;
  config.slo = rpc::SloConfig::make(
      {15 * sim::kUsec, 25 * sim::kUsec, 0.0}, 99.9);
  runner::Experiment experiment(config);

  // Force the controller's p_admit to 0 toward host 1 on QoS_h.
  for (int i = 0; i < 300; ++i) {
    experiment.admission(0).on_completion(0.0, 0, 1, net::kQoSHigh,
                                          net::kQoSHigh, 1.0, 8);
  }
  int downgrades = 0;
  experiment.stack(0).set_completion_listener([&](const RpcRecord& r) {
    if (r.downgraded) {
      EXPECT_EQ(r.qos_run, net::kQoSLow);
      EXPECT_EQ(r.qos_requested, net::kQoSHigh);
      ++downgrades;
    }
  });
  for (int i = 0; i < 20; ++i) {
    experiment.stack(0).issue(1, Priority::kPC, 4096);
  }
  experiment.simulator().run();
  EXPECT_GE(downgrades, 18);
}

TEST(RpcMetricsTest, DowngradeAttributionByRequestedDeliveredAndChannel) {
  RpcMetrics metrics(3, SloConfig::make({15 * sim::kUsec, 25 * sim::kUsec,
                                         0.0}, 99.9), 4);
  auto downgrade = [&](net::HostId src, net::HostId dst,
                       net::QoSLevel from, net::QoSLevel to) {
    metrics.on_issue(dst, from, to, 4096);
    RpcRecord record;
    record.src = src;
    record.dst = dst;
    record.qos_requested = from;
    record.qos_run = to;
    record.downgraded = true;
    record.bytes = 4096;
    record.rnl = 1 * sim::kUsec;
    metrics.record(record);
  };
  downgrade(0, 1, net::kQoSHigh, 1);  // QoS_h -> QoS_m
  downgrade(0, 1, net::kQoSHigh, 2);  // QoS_h -> scavenger
  downgrade(2, 1, net::kQoSHigh, 2);  // same dst/qos, other src
  downgrade(0, 3, 1, 2);              // QoS_m -> scavenger

  // Who asked and suffered (by requested QoS)...
  EXPECT_EQ(metrics.downgraded(net::kQoSHigh), 3u);
  EXPECT_EQ(metrics.downgraded(1), 1u);
  EXPECT_EQ(metrics.downgraded(2), 0u);
  // ...where the traffic actually landed (by delivered QoS)...
  EXPECT_EQ(metrics.downgraded_delivered(net::kQoSHigh), 0u);
  EXPECT_EQ(metrics.downgraded_delivered(1), 1u);
  EXPECT_EQ(metrics.downgraded_delivered(2), 3u);
  // ...and per (src, dst, qos_requested) channel, the AIMD's unit.
  EXPECT_EQ(metrics.downgraded_on_channel(0, 1, net::kQoSHigh), 2u);
  EXPECT_EQ(metrics.downgraded_on_channel(2, 1, net::kQoSHigh), 1u);
  EXPECT_EQ(metrics.downgraded_on_channel(0, 3, 1), 1u);
  EXPECT_EQ(metrics.downgraded_on_channel(0, 1, 1), 0u);
  EXPECT_EQ(metrics.downgraded_on_channel(3, 0, net::kQoSHigh), 0u);
}

TEST(RpcMetricsTest, AdmissionDropCountsRequestedButNotAdmittedBytes) {
  RpcMetrics metrics(2, SloConfig::make({15 * sim::kUsec, 0.0}, 99.9), 2);
  metrics.on_issue(1, net::kQoSHigh, net::kQoSHigh, 1000);
  metrics.on_issue(1, net::kQoSHigh, net::kQoSHigh, 3000,
                   /*admission_dropped=*/true);
  EXPECT_DOUBLE_EQ(metrics.requested_share(net::kQoSHigh), 1.0);
  EXPECT_EQ(metrics.bytes_requested(net::kQoSHigh), 4000u);
  EXPECT_EQ(metrics.bytes_admitted(net::kQoSHigh), 1000u);
}

}  // namespace
}  // namespace aeq::rpc
