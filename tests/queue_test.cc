// Queue-discipline tests: FIFO/SPQ basics, WFQ bandwidth shares and
// work-conservation properties, DWRR shares, and pFabric's priority
// dequeue/eviction rules.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "net/dwrr.h"
#include "net/fifo_queue.h"
#include "net/pfabric_queue.h"
#include "net/queue_factory.h"
#include "net/spq.h"
#include "net/wfq.h"

namespace aeq::net {
namespace {

Packet make_packet(QoSLevel qos, std::uint32_t size, std::uint64_t id = 0) {
  Packet p;
  p.id = id;
  p.qos = qos;
  p.size_bytes = size;
  return p;
}

TEST(FifoQueueTest, FifoOrderAndTailDrop) {
  FifoQueue q(/*capacity_bytes=*/2000);
  EXPECT_TRUE(q.enqueue(make_packet(0, 1000, 1)));
  EXPECT_TRUE(q.enqueue(make_packet(0, 1000, 2)));
  EXPECT_FALSE(q.enqueue(make_packet(0, 1, 3)));  // full
  EXPECT_EQ(q.stats().dropped_packets, 1u);
  EXPECT_EQ(q.dequeue()->id, 1u);
  EXPECT_EQ(q.dequeue()->id, 2u);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(SpqQueueTest, StrictPriorityOrder) {
  SpqQueue q(3);
  ASSERT_TRUE(q.enqueue(make_packet(2, 100, 1)));
  ASSERT_TRUE(q.enqueue(make_packet(0, 100, 2)));
  ASSERT_TRUE(q.enqueue(make_packet(1, 100, 3)));
  EXPECT_EQ(q.dequeue()->id, 2u);
  EXPECT_EQ(q.dequeue()->id, 3u);
  EXPECT_EQ(q.dequeue()->id, 1u);
}

TEST(SpqQueueTest, LowPriorityStarvesUnderHighLoad) {
  SpqQueue q(2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.enqueue(make_packet(1, 100)));
    ASSERT_TRUE(q.enqueue(make_packet(0, 100)));
  }
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.dequeue()->qos, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.dequeue()->qos, 1);
}

// Under continuous backlog, each WFQ class should receive service close to
// its weight share.
class WfqShareTest : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(WfqShareTest, BandwidthShareMatchesWeights) {
  const std::vector<double> weights = GetParam();
  WfqQueue q(weights);
  const std::uint32_t pkt = 1000;
  const int per_class = 400;
  for (int i = 0; i < per_class; ++i) {
    for (std::size_t c = 0; c < weights.size(); ++c) {
      ASSERT_TRUE(q.enqueue(make_packet(static_cast<QoSLevel>(c), pkt)));
    }
  }
  // Serve only `per_class` packets so even a 0.9-share class cannot drain
  // its 400-packet backlog and every class stays backlogged throughout.
  const int serve = per_class;
  std::vector<int> served(weights.size(), 0);
  for (int i = 0; i < serve; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    ++served[p->qos];
  }
  const double total_weight =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  for (std::size_t c = 0; c < weights.size(); ++c) {
    const double share = static_cast<double>(served[c]) / serve;
    const double expected = weights[c] / total_weight;
    EXPECT_NEAR(share, expected, 0.02)
        << "class " << c << " share " << share << " expected " << expected;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeightMixes, WfqShareTest,
    ::testing::Values(std::vector<double>{4.0, 1.0},
                      std::vector<double>{8.0, 4.0, 1.0},
                      std::vector<double>{50.0, 4.0, 1.0},
                      std::vector<double>{1.0, 1.0},
                      std::vector<double>{16.0, 8.0, 4.0, 2.0, 1.0}));

TEST(WfqQueueTest, WorkConservingWhenOneClassIdle) {
  WfqQueue q({4.0, 1.0});
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.enqueue(make_packet(1, 1000)));
  // Only the low class has traffic: it gets the full link.
  for (int i = 0; i < 10; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->qos, 1);
  }
  EXPECT_TRUE(q.empty());
}

TEST(WfqQueueTest, NewlyBackloggedClassGetsNoIdleCredit) {
  WfqQueue q({1.0, 1.0});
  // Class 1 builds a backlog while class 0 is idle.
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(q.enqueue(make_packet(1, 1000)));
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(q.dequeue().has_value());
  // Class 0 wakes up: it should now share 50/50, not monopolize the link
  // with accumulated credit.
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(q.enqueue(make_packet(0, 1000)));
  int served0 = 0;
  for (int i = 0; i < 50; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    if (p->qos == 0) ++served0;
  }
  EXPECT_NEAR(served0, 25, 2);
}

TEST(WfqQueueTest, PerClassFifoOrder) {
  WfqQueue q({4.0, 1.0});
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(q.enqueue(make_packet(0, 1000, i)));
  }
  std::uint64_t last = 0;
  while (auto p = q.dequeue()) {
    EXPECT_GT(p->id, last);
    last = p->id;
  }
}

TEST(WfqQueueTest, SharedBufferTailDrop) {
  WfqQueue q({4.0, 1.0}, /*capacity_bytes=*/2500);
  EXPECT_TRUE(q.enqueue(make_packet(0, 1000)));
  EXPECT_TRUE(q.enqueue(make_packet(1, 1000)));
  EXPECT_FALSE(q.enqueue(make_packet(0, 1000)));  // would exceed 2500
  EXPECT_EQ(q.backlog_bytes(), 2000u);
  EXPECT_EQ(q.class_backlog_bytes(0), 1000u);
  EXPECT_EQ(q.class_backlog_bytes(1), 1000u);
}

TEST(WfqQueueTest, PerClassDropCountersAttributeSharedBufferDrops) {
  WfqQueue q({4.0, 1.0}, /*capacity_bytes=*/2500);
  ASSERT_TRUE(q.enqueue(make_packet(0, 1000)));
  ASSERT_TRUE(q.enqueue(make_packet(1, 1000)));
  // Shared buffer is full: the drop is charged to the arriving class, even
  // though the buffer pressure comes from both.
  EXPECT_FALSE(q.enqueue(make_packet(1, 800)));
  EXPECT_FALSE(q.enqueue(make_packet(0, 600)));
  EXPECT_EQ(q.class_dropped_packets(0), 1u);
  EXPECT_EQ(q.class_dropped_bytes(0), 600u);
  EXPECT_EQ(q.class_dropped_packets(1), 1u);
  EXPECT_EQ(q.class_dropped_bytes(1), 800u);
  // Per-class counters partition the aggregate stats.
  EXPECT_EQ(q.stats().dropped_packets, 2u);
  EXPECT_EQ(q.stats().dropped_bytes, 1400u);
  // Backlog accessors are unaffected by drops.
  EXPECT_EQ(q.class_backlog_bytes(0), 1000u);
  EXPECT_EQ(q.class_backlog_bytes(1), 1000u);
}

TEST(WfqQueueTest, PerClassDropCountersCoverPerClassCap) {
  WfqQueue q({1.0, 1.0}, /*capacity_bytes=*/0,
             /*per_class_capacity_bytes=*/1500);
  ASSERT_TRUE(q.enqueue(make_packet(0, 1000)));
  EXPECT_FALSE(q.enqueue(make_packet(0, 1000)));  // class 0 cap hit
  ASSERT_TRUE(q.enqueue(make_packet(1, 1000)));   // class 1 unaffected
  EXPECT_EQ(q.class_dropped_packets(0), 1u);
  EXPECT_EQ(q.class_dropped_bytes(0), 1000u);
  EXPECT_EQ(q.class_dropped_packets(1), 0u);
  EXPECT_EQ(q.class_dropped_bytes(1), 0u);
}

TEST(SpqQueueTest, PerClassDropCounters) {
  SpqQueue q(2, /*capacity_bytes=*/2000);
  ASSERT_TRUE(q.enqueue(make_packet(0, 1000)));
  ASSERT_TRUE(q.enqueue(make_packet(1, 1000)));
  EXPECT_FALSE(q.enqueue(make_packet(1, 500)));
  EXPECT_EQ(q.class_dropped_packets(0), 0u);
  EXPECT_EQ(q.class_dropped_packets(1), 1u);
  EXPECT_EQ(q.class_dropped_bytes(1), 500u);
  EXPECT_EQ(q.stats().dropped_packets, 1u);
}

TEST(DwrrQueueTest, PerClassDropCounters) {
  DwrrQueue q({4.0, 1.0}, /*capacity_bytes=*/2000, /*quantum_scale=*/1000);
  ASSERT_TRUE(q.enqueue(make_packet(0, 1000)));
  ASSERT_TRUE(q.enqueue(make_packet(1, 1000)));
  EXPECT_FALSE(q.enqueue(make_packet(0, 700)));
  EXPECT_EQ(q.class_dropped_packets(0), 1u);
  EXPECT_EQ(q.class_dropped_bytes(0), 700u);
  EXPECT_EQ(q.class_dropped_packets(1), 0u);
  EXPECT_EQ(q.stats().dropped_bytes, 700u);
}

TEST(WfqQueueTest, VirtualTimeMonotone) {
  WfqQueue q({2.0, 1.0});
  double last_vt = 0.0;
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(q.enqueue(make_packet(0, 1000)));
    ASSERT_TRUE(q.enqueue(make_packet(1, 500)));
    ASSERT_TRUE(q.dequeue().has_value());
    EXPECT_GE(q.virtual_time(), last_vt);
    last_vt = q.virtual_time();
  }
}

TEST(DwrrQueueTest, ShareMatchesWeights) {
  DwrrQueue q({4.0, 1.0}, 0, 1000);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(q.enqueue(make_packet(0, 1000)));
    ASSERT_TRUE(q.enqueue(make_packet(1, 1000)));
  }
  int served0 = 0;
  const int serve = 400;
  for (int i = 0; i < serve; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    if (p->qos == 0) ++served0;
  }
  EXPECT_NEAR(static_cast<double>(served0) / serve, 0.8, 0.03);
}

TEST(DwrrQueueTest, WorkConservingAndDrainsFully) {
  DwrrQueue q({8.0, 4.0, 1.0});
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(q.enqueue(make_packet(static_cast<QoSLevel>(i % 3), 700)));
  }
  int count = 0;
  while (q.dequeue().has_value()) ++count;
  EXPECT_EQ(count, 30);
  EXPECT_TRUE(q.empty());
}

TEST(PfabricQueueTest, DequeuesMostUrgentFirst) {
  PfabricQueue q(100000);
  auto with_priority = [](double prio, std::uint64_t id) {
    Packet p = make_packet(0, 1000, id);
    p.cold.priority = prio;
    return p;
  };
  ASSERT_TRUE(q.enqueue(with_priority(5000, 1)));
  ASSERT_TRUE(q.enqueue(with_priority(100, 2)));
  ASSERT_TRUE(q.enqueue(with_priority(2000, 3)));
  EXPECT_EQ(q.dequeue()->id, 2u);
  EXPECT_EQ(q.dequeue()->id, 3u);
  EXPECT_EQ(q.dequeue()->id, 1u);
}

TEST(PfabricQueueTest, EvictsLeastUrgentOnOverflow) {
  PfabricQueue q(2500);
  auto with_priority = [](double prio, std::uint64_t id) {
    Packet p = make_packet(0, 1000, id);
    p.cold.priority = prio;
    return p;
  };
  ASSERT_TRUE(q.enqueue(with_priority(100, 1)));
  ASSERT_TRUE(q.enqueue(with_priority(9000, 2)));
  // Newcomer is more urgent than packet 2: packet 2 is evicted.
  EXPECT_TRUE(q.enqueue(with_priority(200, 3)));
  EXPECT_EQ(q.stats().dropped_packets, 1u);
  EXPECT_EQ(q.dequeue()->id, 1u);
  EXPECT_EQ(q.dequeue()->id, 3u);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(PfabricQueueTest, DropsNewcomerWhenLeastUrgent) {
  PfabricQueue q(2000);
  auto with_priority = [](double prio, std::uint64_t id) {
    Packet p = make_packet(0, 1000, id);
    p.cold.priority = prio;
    return p;
  };
  ASSERT_TRUE(q.enqueue(with_priority(100, 1)));
  ASSERT_TRUE(q.enqueue(with_priority(200, 2)));
  EXPECT_FALSE(q.enqueue(with_priority(9000, 3)));
  EXPECT_EQ(q.backlog_packets(), 2u);
}

TEST(PfabricQueueTest, FifoAmongEqualPriorities) {
  PfabricQueue q(100000);
  auto with_priority = [](double prio, std::uint64_t id) {
    Packet p = make_packet(0, 1000, id);
    p.cold.priority = prio;
    return p;
  };
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(q.enqueue(with_priority(100, i)));
  }
  for (std::uint64_t i = 1; i <= 4; ++i) EXPECT_EQ(q.dequeue()->id, i);
}

TEST(QueueFactoryTest, BuildsEveryType) {
  for (auto type : {SchedulerType::kFifo, SchedulerType::kWfq,
                    SchedulerType::kDwrr, SchedulerType::kSpq,
                    SchedulerType::kPfabric}) {
    QueueConfig config;
    config.type = type;
    config.capacity_bytes = 1 << 20;
    auto q = make_queue(config);
    ASSERT_NE(q, nullptr);
    EXPECT_TRUE(q->enqueue(make_packet(0, 100)));
    EXPECT_EQ(q->backlog_packets(), 1u);
    EXPECT_TRUE(q->dequeue().has_value());
    EXPECT_TRUE(q->empty());
  }
}

}  // namespace
}  // namespace aeq::net
