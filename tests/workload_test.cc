// Workload tests: size distributions (means, bounds, CDF shape), arrival
// processes (rates, burst envelope), and the traffic generator's offered
// load and QoS mix.
#include <gtest/gtest.h>

#include <memory>

#include "rpc/metrics.h"
#include "runner/experiment.h"
#include "workload/arrival.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace aeq::workload {
namespace {

TEST(SizeDistTest, FixedAndUniform) {
  sim::Rng rng(1);
  FixedSize fixed(32768);
  EXPECT_EQ(fixed.sample(rng), 32768u);
  EXPECT_DOUBLE_EQ(fixed.mean_bytes(), 32768.0);

  UniformSize uniform(1000, 2000);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto x = uniform.sample(rng);
    EXPECT_GE(x, 1000u);
    EXPECT_LE(x, 2000u);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / 20000, uniform.mean_bytes(), 15.0);
}

TEST(SizeDistTest, ExponentialClampedMeanMatchesSamples) {
  sim::Rng rng(2);
  ExponentialSize dist(8000.0, 512, 64000);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto x = dist.sample(rng);
    EXPECT_GE(x, 512u);
    EXPECT_LE(x, 64000u);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / n, dist.mean_bytes(), dist.mean_bytes() * 0.02);
}

TEST(SizeDistTest, EmpiricalInterpolatesAndMatchesMean) {
  sim::Rng rng(3);
  EmpiricalSize dist({{0.0, 1000}, {0.5, 1000}, {1.0, 9000}});
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(dist.sample(rng));
  // Mean: 0.5*1000 + 0.5*avg(1000,9000) = 500 + 2500 = 3000... wait:
  // first segment contributes 0.5 * avg(1000,1000) = 500; second
  // 0.5 * avg(1000,9000) = 2500; total 3000.
  EXPECT_DOUBLE_EQ(dist.mean_bytes(), 3000.0);
  EXPECT_NEAR(sum / n, 3000.0, 60.0);
}

TEST(SizeDistTest, ProductionShapesOrdered) {
  // BE >> NC >> PC in mean size; PC still has a large tail (Figure 1).
  auto pc = production_size_dist(rpc::Priority::kPC);
  auto nc = production_size_dist(rpc::Priority::kNC);
  auto be = production_size_dist(rpc::Priority::kBE);
  EXPECT_LT(pc->mean_bytes(), nc->mean_bytes());
  EXPECT_LT(nc->mean_bytes(), be->mean_bytes());
  sim::Rng rng(4);
  std::uint64_t pc_max = 0;
  for (int i = 0; i < 100000; ++i) {
    pc_max = std::max(pc_max, pc->sample(rng));
  }
  EXPECT_GT(pc_max, 200000u);  // the misalignment tail exists
}

TEST(ArrivalTest, PoissonRateMatches) {
  sim::Rng rng(5);
  PoissonArrivals arrivals(10000.0);
  sim::Time t = 0.0;
  int count = 0;
  while (t < 1.0) {
    t = arrivals.next_arrival(t, rng);
    ++count;
  }
  EXPECT_NEAR(count, 10000, 300);
}

TEST(ArrivalTest, BurstCycleAverageRatePreserved) {
  sim::Rng rng(6);
  BurstCycleArrivals arrivals(10000.0, 1.75, 100 * sim::kUsec);
  sim::Time t = 0.0;
  int count = 0;
  while (t < 1.0) {
    t = arrivals.next_arrival(t, rng);
    ++count;
  }
  EXPECT_NEAR(count, 10000, 300);
}

TEST(ArrivalTest, BurstCycleConfinesArrivalsToWindow) {
  sim::Rng rng(7);
  const sim::Time period = 100 * sim::kUsec;
  const double burst_over_avg = 2.0;  // window = 50us of each 100us
  BurstCycleArrivals arrivals(1e6, burst_over_avg, period);
  EXPECT_DOUBLE_EQ(arrivals.burst_window(), 50 * sim::kUsec);
  sim::Time t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t = arrivals.next_arrival(t, rng);
    const double phase = std::fmod(t, period);
    EXPECT_LE(phase, 50 * sim::kUsec + 1e-9) << "arrival outside burst";
  }
}

TEST(ArrivalTest, StrictlyIncreasing) {
  sim::Rng rng(8);
  BurstCycleArrivals arrivals(1e7, 1.75, 100 * sim::kUsec);
  sim::Time t = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const sim::Time next = arrivals.next_arrival(t, rng);
    EXPECT_GT(next, t);
    t = next;
  }
}

TEST(GeneratorTest, OfferedLoadAndMixMatchConfig) {
  // Drive a 3-host experiment without admission control at moderate load
  // and verify the generator's byte mix approximates the configured one.
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 3;
  config.enable_aequitas = false;
  config.slo = rpc::SloConfig::make(
      {15 * sim::kUsec, 25 * sim::kUsec, 0.0}, 99.9);
  runner::Experiment experiment(config);
  const auto* sizes =
      experiment.own(std::make_unique<FixedSize>(32 * sim::kKiB));
  GeneratorConfig gen;
  const double rate = 0.3 * sim::gbps(100);
  gen.classes = {{rpc::Priority::kPC, 0.6 * rate, sizes, 0.0},
                 {rpc::Priority::kNC, 0.3 * rate, sizes, 0.0},
                 {rpc::Priority::kBE, 0.1 * rate, sizes, 0.0}};
  experiment.add_generator(0, gen, fixed_destination(2));
  experiment.run(0.0, 20 * sim::kMsec);

  const auto& metrics = experiment.metrics();
  EXPECT_NEAR(metrics.requested_share(0), 0.6, 0.05);
  EXPECT_NEAR(metrics.requested_share(1), 0.3, 0.05);
  EXPECT_NEAR(metrics.requested_share(2), 0.1, 0.05);
  // Offered ~0.3*12.5GB/s*20ms = 75MB total.
  std::uint64_t total = 0;
  for (net::QoSLevel q = 0; q < 3; ++q) total += metrics.bytes_requested(q);
  EXPECT_NEAR(static_cast<double>(total), 75e6, 12e6);
}

}  // namespace
}  // namespace aeq::workload
