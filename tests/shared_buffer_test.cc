// Tests for the shared switch buffer pool with Dynamic-Threshold admission
// and the PooledQueue decorator.
#include <gtest/gtest.h>

#include <memory>

#include "net/fifo_queue.h"
#include "net/shared_buffer.h"
#include "net/wfq.h"
#include "topo/builders.h"
#include "transport/host_stack.h"
#include "transport/swift.h"

namespace aeq::net {
namespace {

Packet make_packet(std::uint32_t size, QoSLevel qos = 0) {
  Packet p;
  p.size_bytes = size;
  p.qos = qos;
  return p;
}

TEST(SharedBufferPoolTest, ReserveAndRelease) {
  SharedBufferPool pool(1000, /*dt_alpha=*/10.0);
  EXPECT_TRUE(pool.try_reserve(400, 0));
  EXPECT_EQ(pool.used(), 400u);
  EXPECT_TRUE(pool.try_reserve(600, 0));
  EXPECT_FALSE(pool.try_reserve(1, 0));  // pool exhausted
  pool.release(600);
  EXPECT_TRUE(pool.try_reserve(100, 0));
}

TEST(SharedBufferPoolTest, DynamicThresholdCapsHeavyQueue) {
  SharedBufferPool pool(1000, /*dt_alpha=*/1.0);
  // A queue may only hold up to alpha * free bytes: as it grows, its own
  // occupancy shrinks the allowance.
  std::uint64_t backlog = 0;
  while (pool.try_reserve(100, backlog)) backlog += 100;
  // With alpha=1: backlog + 100 <= free = 1000 - backlog
  //   => backlog <= 450 => 500 after the last accepted packet.
  EXPECT_EQ(backlog, 500u);
  // A different (empty) queue can still get buffer space.
  EXPECT_TRUE(pool.try_reserve(100, 0));
}

TEST(PooledQueueTest, DropsWhenPoolDenies) {
  SharedBufferPool pool(2500, 10.0);
  PooledQueue queue(std::make_unique<FifoQueue>(), pool);
  EXPECT_TRUE(queue.enqueue(make_packet(1000)));
  EXPECT_TRUE(queue.enqueue(make_packet(1000)));
  EXPECT_FALSE(queue.enqueue(make_packet(1000)));  // pool full at 2500
  EXPECT_EQ(queue.stats().dropped_packets, 1u);
  // Dequeue releases pool space.
  EXPECT_TRUE(queue.dequeue().has_value());
  EXPECT_EQ(pool.used(), 1000u);
  EXPECT_TRUE(queue.enqueue(make_packet(1000)));
}

TEST(PooledQueueTest, InnerDisciplineDropReleasesReservation) {
  SharedBufferPool pool(1 << 20, 10.0);
  // Inner WFQ has its own tiny capacity.
  PooledQueue queue(
      std::make_unique<WfqQueue>(std::vector<double>{4.0, 1.0}, 1500), pool);
  EXPECT_TRUE(queue.enqueue(make_packet(1000)));
  EXPECT_FALSE(queue.enqueue(make_packet(1000)));  // inner capacity
  EXPECT_EQ(pool.used(), 1000u);  // reservation for the drop was returned
}

TEST(PooledQueueTest, TwoQueuesShareOnePool) {
  SharedBufferPool pool(3000, 10.0);
  PooledQueue a(std::make_unique<FifoQueue>(), pool);
  PooledQueue b(std::make_unique<FifoQueue>(), pool);
  EXPECT_TRUE(a.enqueue(make_packet(2000)));
  // b can only use what a left over.
  EXPECT_TRUE(b.enqueue(make_packet(1000)));
  EXPECT_FALSE(b.enqueue(make_packet(1000)));
  a.dequeue();
  EXPECT_TRUE(b.enqueue(make_packet(1000)));
}

TEST(SharedBufferTopologyTest, StarWithPoolDeliversTraffic) {
  sim::Simulator s;
  topo::StarConfig config;
  config.num_hosts = 4;
  config.host_queue.weights = {4.0, 1.0};
  config.switch_queue.weights = {4.0, 1.0};
  config.shared_buffer_bytes = 2 * sim::kMiB;
  topo::Network network = topo::build_star(s, config);
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  for (std::size_t i = 0; i < 4; ++i) {
    stacks.push_back(std::make_unique<transport::HostStack>(
        s, network.host(static_cast<net::HostId>(i)), 4,
        transport::TransportConfig{}, [] {
          return std::make_unique<transport::SwiftCC>(
              transport::SwiftConfig{});
        }));
  }
  int done = 0;
  for (net::HostId src : {0, 1, 2}) {
    transport::SendRequest request;
    request.dst = 3;
    request.qos = 0;
    request.bytes = 256 * sim::kKiB;
    request.rpc_id = static_cast<std::uint64_t>(src) + 1;
    stacks[static_cast<std::size_t>(src)]->send_message(
        request, [&done](const transport::MessageCompletion&) { ++done; });
  }
  s.run_until(0.5);
  EXPECT_EQ(done, 3);
  EXPECT_EQ(stacks[3]->bytes_delivered(), 3 * 256 * sim::kKiB);
}

}  // namespace
}  // namespace aeq::net
