// detlint fixture: the raw-rand rule must flag ambient randomness sources
// and be silenced by a detlint:allow on the site. Never compiled; consumed
// by `tools/detlint.py --self-test`.
#include <cstdlib>
#include <random>

namespace aeq::sim {

int bad_rand() {
  return rand();  // detlint:expect(raw-rand)
}

void bad_srand(unsigned seed) {
  srand(seed);  // detlint:expect(raw-rand)
}

unsigned bad_entropy() {
  std::random_device rd;  // detlint:expect(raw-rand)
  return rd();
}

int allowed_rand() {
  // Fixture-only suppression example (real code uses sim::Rng).
  // detlint:allow(raw-rand)
  return rand();
}

}  // namespace aeq::sim
