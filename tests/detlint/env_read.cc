// detlint fixture: the env-read rule must flag std::getenv in simulation
// code and be silenced by a detlint:allow on the site. Never compiled;
// consumed by `tools/detlint.py --self-test`.
#include <cstdlib>

namespace aeq::runner {

int bad_jobs() {
  const char* env = std::getenv("AEQ_JOBS");  // detlint:expect(env-read)
  return env ? 1 : 0;
}

int allowed_jobs() {
  // Worker-pool sizing only; results are identical for any value.
  // detlint:allow(env-read)
  const char* env = std::getenv("AEQ_JOBS");
  return env ? 1 : 0;
}

}  // namespace aeq::runner
