// detlint fixture: the wall-clock rule must flag host clock reads and be
// silenced by a detlint:allow on the site. Never compiled; consumed by
// `tools/detlint.py --self-test`.
#include <chrono>
#include <ctime>

namespace aeq::sim {

double bad_now_steady() {
  auto t = std::chrono::steady_clock::now();  // detlint:expect(wall-clock)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double bad_now_system() {
  auto t = std::chrono::system_clock::now();  // detlint:expect(wall-clock)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long bad_now_time() {
  return std::time(nullptr);  // detlint:expect(wall-clock)
}

long allowed_now_time() {
  // Startup banner timestamp only; never feeds the schedule.
  // detlint:allow(wall-clock)
  return std::time(nullptr);
}

}  // namespace aeq::sim
