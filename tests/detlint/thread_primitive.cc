// detlint fixture: the thread-primitive rule must flag std:: concurrency
// types, util:: channel/lock wrappers, thread_local, and pthread_* calls in
// simulation code, and be silenced by a detlint:allow on the site. Never
// compiled; consumed by `tools/detlint.py --self-test`.
#include <atomic>
#include <mutex>
#include <thread>

namespace aeq::sim {

struct BadWorker {
  std::mutex mu;                // detlint:expect(thread-primitive)
  std::atomic<int> pending{0};  // detlint:expect(thread-primitive)
};

void bad_spawn() {
  std::thread worker([] {});  // detlint:expect(thread-primitive)
  worker.join();
}

void bad_channel(util::SpscChannel<int>& ch) {  // detlint:expect(thread-primitive)
  (void)ch;
}

// Failure hook mirror: write-once before abort, never read by the schedule.
// detlint:allow(thread-primitive)
thread_local int t_failure_depth = 0;

}  // namespace aeq::sim
