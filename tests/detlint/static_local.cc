// detlint fixture: the static-local rule must flag mutable function-local
// statics in simulation code, stay silent on constants, and be silenced by
// a detlint:allow on the site. Never compiled; consumed by
// `tools/detlint.py --self-test`.

namespace aeq::sim {

int bad_counter() {
  static int calls = 0;  // detlint:expect(static-local)
  return ++calls;
}

const char* bad_cache() {
  static char buffer[64];  // detlint:expect(static-local)
  return buffer;
}

int fine_constant() {
  static const int kTableSize = 64;
  return kTableSize;
}

constexpr int kNamespaceScope = 3;  // namespace-scope: rule does not apply

int allowed_counter() {
  // Fixture-only suppression example.
  // detlint:allow(static-local)
  static int calls = 0;
  return ++calls;
}

}  // namespace aeq::sim
