// detlint fixture: the pointer-order rule must flag hashing/ordering by
// pointer value and pointer-to-integer casts, and be silenced by a
// detlint:allow on the site. Never compiled; consumed by
// `tools/detlint.py --self-test`.
#include <cstdint>
#include <functional>

namespace aeq::core {

struct Flow;

std::size_t bad_hash(const Flow* flow) {
  return std::hash<const Flow*>{}(flow);  // detlint:expect(pointer-order)
}

bool bad_less(const Flow* a, const Flow* b) {
  return std::less<const Flow*>{}(a, b);  // detlint:expect(pointer-order)
}

std::uint64_t bad_key(const Flow* flow) {
  return reinterpret_cast<std::uintptr_t>(flow);  // detlint:expect(pointer-order)
}

std::uint64_t allowed_key(const Flow* flow) {
  // Debug print only; the value is never ordered, hashed, or stored.
  // detlint:allow(pointer-order)
  return reinterpret_cast<std::uintptr_t>(flow);
}

}  // namespace aeq::core
