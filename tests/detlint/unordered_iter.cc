// detlint fixture: the unordered-iter rule must flag range-for, .begin(),
// and FlatMap64::for_each over unordered containers (including through a
// `using` alias), and be silenced by a detlint:allow on the site. Never
// compiled; consumed by `tools/detlint.py --self-test`.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace aeq::net {

using RouteMap = std::unordered_map<std::uint64_t, std::vector<std::size_t>>;

class RouteTable {
 public:
  std::uint64_t sum_bad() const {
    std::uint64_t total = 0;
    for (const auto& [host, ports] : routes_) {  // detlint:expect(unordered-iter)
      total += host + ports.size();
    }
    return total;
  }

  auto begin_bad() const {
    return routes_.begin();  // detlint:expect(unordered-iter)
  }

  std::uint64_t visit_bad() const {
    std::uint64_t total = 0;
    flows_.for_each([&](std::uint64_t, int v) {  // detlint:expect(unordered-iter)
      total += static_cast<std::uint64_t>(v);
    });
    return total;
  }

  std::uint64_t sum_allowed() const {
    std::uint64_t total = 0;
    // Commutative fold; iteration order cannot escape.
    // detlint:allow(unordered-iter)
    for (const auto& [host, ports] : routes_) {
      total += host + ports.size();
    }
    return total;
  }

 private:
  RouteMap routes_;
  util::FlatMap64<int> flows_;
};

}  // namespace aeq::net
