// Tests for the per-shard telemetry merge (obs/shard_merge.h) at the
// experiment level. The load-bearing regression: a K-shard run gives each
// shard's Recorder a disjoint first_port_id base (Experiment::
// wire_shard_telemetry), so no two ports from different shards can land on
// the same pid in the merged Chrome trace. Before the base plumbing every
// shard numbered its ports from zero and the merged trace folded distinct
// ports onto one track.
#include <cstdio>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "rpc/slo.h"
#include "runner/experiment.h"
#include "sim/units.h"
#include "workload/size_dist.h"

namespace {

using namespace aeq;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Every (pid -> port name) binding announced by a process_name metadata
// event in a Chrome trace.
std::map<std::string, std::set<std::string>> pid_names(
    const std::string& trace) {
  std::map<std::string, std::set<std::string>> names;
  const std::regex meta(
      R"re(\{"ph":"M","name":"process_name","pid":(\d+),"tid":0,)re"
      R"re("args":\{"name":"([^"]+)"\}\})re");
  for (auto it = std::sregex_iterator(trace.begin(), trace.end(), meta);
       it != std::sregex_iterator(); ++it) {
    names[(*it)[1]].insert((*it)[2]);
  }
  return names;
}

TEST(ShardMergeTest, PortTracksStayDistinctAcrossShards) {
  constexpr std::size_t kShards = 4;
  runner::ExperimentConfig config;
  config.scheduler_backend = sim::SchedulerBackend::kCalendar;
  config.num_hosts = 8;
  config.num_qos = 3;
  config.enable_aequitas = true;
  config.slo = rpc::SloConfig::make(
      {2.0 * sim::kUsec, 10.0 * sim::kUsec, 0.0}, 99.0);
  config.shards = kShards;
  config.audit = false;
  config.seed = 7;

  const std::string trace_path =
      ::testing::TempDir() + "shard_merge_trace.json";
  runner::Experiment experiment(config);
  experiment.trace_to(trace_path, "");
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(16 * sim::kKiB));
  for (std::size_t h = 0; h < config.num_hosts; ++h) {
    workload::GeneratorConfig gen;
    gen.classes = {{rpc::Priority::kPC, 0.4 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(static_cast<net::HostId>(h), gen);
  }
  experiment.run(0.0, 0.3 * sim::kMsec);

  const std::string trace = slurp(trace_path);
  const auto names = pid_names(trace);

  // One pid never carries two different names — the collision the
  // first_port_id bases exist to prevent.
  std::set<std::string> all_port_names;
  for (const auto& [pid, port_names] : names) {
    EXPECT_EQ(port_names.size(), 1u)
        << "pid " << pid << " is shared by " << port_names.size()
        << " distinct tracks";
    all_port_names.insert(*port_names.begin());
  }

  // And every port of the sharded topology got its own track: 8 host NICs
  // plus each shard switch's ports (build_sharded_star creates one
  // "tor-shard<k>" switch per shard, so switch tracks exist for all four).
  std::size_t nic_tracks = 0;
  std::set<std::string> switches_seen;
  for (const auto& name : all_port_names) {
    if (name.find("-nic") != std::string::npos) ++nic_tracks;
    const auto dash = name.find("-port");
    if (dash != std::string::npos && name.rfind("tor-shard", 0) == 0) {
      switches_seen.insert(name.substr(0, dash));
    }
  }
  EXPECT_EQ(nic_tracks, config.num_hosts);
  EXPECT_EQ(switches_seen.size(), kShards);

  std::remove(trace_path.c_str());
}

// The merged file keeps the single-sink framing: one prologue, events
// joined shard by shard, one epilogue, and no leftover .shard<k> inputs.
TEST(ShardMergeTest, MergedTraceUsesSingleSinkFramingAndRemovesInputs) {
  constexpr std::size_t kShards = 2;
  runner::ExperimentConfig config;
  config.scheduler_backend = sim::SchedulerBackend::kCalendar;
  config.num_hosts = 4;
  config.num_qos = 3;
  config.enable_aequitas = true;
  config.slo = rpc::SloConfig::make(
      {2.0 * sim::kUsec, 10.0 * sim::kUsec, 0.0}, 99.0);
  config.shards = kShards;
  config.audit = false;
  config.seed = 11;

  const std::string trace_path =
      ::testing::TempDir() + "shard_merge_framing.json";
  runner::Experiment experiment(config);
  experiment.trace_to(trace_path, "");
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(16 * sim::kKiB));
  workload::GeneratorConfig gen;
  gen.classes = {{rpc::Priority::kPC, 0.4 * sim::gbps(100), sizes, 0.0}};
  experiment.add_generator(0, gen);
  experiment.run(0.0, 0.2 * sim::kMsec);

  const std::string trace = slurp(trace_path);
  EXPECT_EQ(trace.rfind(R"({"displayTimeUnit":"ms","traceEvents":[)", 0), 0u);
  EXPECT_EQ(trace.substr(trace.size() - 4), "\n]}\n");
  for (std::size_t k = 0; k < kShards; ++k) {
    std::ifstream shard_file(trace_path + ".shard" + std::to_string(k));
    EXPECT_FALSE(shard_file.is_open())
        << "per-shard input " << k << " survived the merge";
  }

  std::remove(trace_path.c_str());
}

}  // namespace
