// Property-based suites tying the layers together:
//  * model-based EventQueue check against a reference priority list,
//  * packet-level WFQ worst-case delay vs the closed-form bound across a
//    (phi, rho, share) grid — the Figure-10 validation as a test,
//  * fluid-model invariants (single class, symmetric classes),
//  * Swift idle-restart and pacing behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "analysis/fluid.h"
#include "analysis/wfq_delay.h"
#include "net/port.h"
#include "net/wfq.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "transport/swift.h"

namespace aeq {
namespace {

TEST(EventQueueModelTest, MatchesReferenceOrderUnderRandomOps) {
  sim::EventQueue queue;
  sim::Rng rng(99);
  struct Ref {
    double t;
    std::uint64_t seq;
    int id;
  };
  std::vector<Ref> reference;
  std::vector<sim::EventId> ids;
  std::vector<int> fired;
  std::uint64_t seq = 0;
  int next_id = 0;

  for (int round = 0; round < 2000; ++round) {
    const double action = rng.uniform();
    if (action < 0.55 || queue.empty()) {
      const double t = rng.uniform(0.0, 100.0);
      const int id = next_id++;
      ids.push_back(queue.schedule(t, [&fired, id] { fired.push_back(id); }));
      reference.push_back(Ref{t, seq++, id});
    } else if (action < 0.7 && !ids.empty()) {
      // Cancel a random still-known event (may already have fired).
      const std::size_t pick = rng.index(ids.size());
      if (queue.cancel(ids[pick])) {
        // Remove from the reference model by matching insertion order: the
        // id at position `pick` corresponds to reference entry with id ==
        // pick only if never fired; search by id.
        auto it = std::find_if(
            reference.begin(), reference.end(),
            [&](const Ref& r) { return r.id == static_cast<int>(pick); });
        ASSERT_NE(it, reference.end());
        reference.erase(it);
      }
    } else {
      auto popped = queue.pop();
      popped.handler();
      // Reference: smallest (t, seq).
      auto best = std::min_element(reference.begin(), reference.end(),
                                   [](const Ref& a, const Ref& b) {
                                     return std::tie(a.t, a.seq) <
                                            std::tie(b.t, b.seq);
                                   });
      ASSERT_NE(best, reference.end());
      ASSERT_FALSE(fired.empty());
      EXPECT_EQ(fired.back(), best->id);
      reference.erase(best);
    }
    ASSERT_EQ(queue.size(), reference.size());
  }
}

// Packet-level WFQ under the Figure-7 arrival pattern must respect the
// closed-form worst-case bound (within packet-granularity slack) and get
// close to it (the bound is tight for this arrival pattern).
class WfqDelayBoundProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(WfqDelayBoundProperty, PacketSimMatchesTheory) {
  const auto [phi, rho, share] = GetParam();
  const analysis::TwoQosParams params{.phi = phi, .mu = 0.8, .rho = rho};

  sim::Simulator s;
  const sim::Rate line_rate = sim::gbps(100);
  const sim::Time period = 400 * sim::kUsec;
  const sim::Time window = period * params.mu / params.rho;
  const std::uint32_t pkt = 1000;

  struct Recorder final : net::PacketSink {
    sim::Simulator* sim;
    double worst[2] = {0, 0};
    void receive(const net::Packet& p) override {
      worst[p.qos] = std::max(worst[p.qos], sim->now() - p.sent_time);
    }
  } recorder;
  recorder.sim = &s;

  net::Port port(s, line_rate, 0.0,
                 std::make_unique<net::WfqQueue>(
                     std::vector<double>{phi, 1.0}));
  port.connect(&recorder);
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (int cls = 0; cls < 2; ++cls) {
      const double cls_share = cls == 0 ? share : 1.0 - share;
      const double byte_rate = params.rho * line_rate * cls_share;
      const sim::Time interval = pkt / byte_rate;
      for (sim::Time t = cycle * period; t < cycle * period + window;
           t += interval) {
        s.schedule_at(t, [&port, cls, &s] {
          net::Packet p;
          p.qos = static_cast<net::QoSLevel>(cls);
          p.size_bytes = 1000;
          p.sent_time = s.now();
          port.send(p);
        });
      }
    }
  }
  s.run();

  const double slack = 0.01;  // packet granularity, normalized to period
  EXPECT_NEAR(recorder.worst[0] / period, analysis::delay_high(params, share),
              slack)
      << "QoS_h phi=" << phi << " rho=" << rho << " x=" << share;
  EXPECT_NEAR(recorder.worst[1] / period, analysis::delay_low(params, share),
              slack)
      << "QoS_l phi=" << phi << " rho=" << rho << " x=" << share;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WfqDelayBoundProperty,
    ::testing::Combine(::testing::Values(2.0, 4.0, 8.0),
                       ::testing::Values(1.2, 1.5, 2.0),
                       ::testing::Values(0.2, 0.5, 0.8)));

TEST(FluidPropertyTest, SingleClassMatchesMm1StyleBound) {
  // One class: worst-case delay is mu * (1 - 1/rho) regardless of weights.
  for (double rho : {1.2, 1.6, 2.4}) {
    analysis::FluidConfig config;
    config.weights = {3.0};
    config.shares = {1.0};
    config.mu = 0.8;
    config.rho = rho;
    const auto result = analysis::simulate_fluid(config);
    EXPECT_NEAR(result.delay[0], 0.8 * (1.0 - 1.0 / rho), 1e-9);
  }
}

TEST(FluidPropertyTest, SymmetricClassesGetEqualDelay) {
  analysis::FluidConfig config;
  config.weights = {2.0, 2.0, 2.0};
  config.shares = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  config.mu = 0.8;
  config.rho = 1.5;
  const auto result = analysis::simulate_fluid(config);
  EXPECT_NEAR(result.delay[0], result.delay[1], 1e-9);
  EXPECT_NEAR(result.delay[1], result.delay[2], 1e-9);
}

TEST(FluidPropertyTest, HigherWeightNeverHurtsTheHighClass) {
  for (double x : {0.3, 0.5, 0.7}) {
    double previous = 1e9;
    for (double phi : {1.0, 2.0, 4.0, 8.0, 32.0}) {
      const analysis::TwoQosParams params{.phi = phi, .mu = 0.8, .rho = 1.5};
      const double d = analysis::delay_high(params, x);
      EXPECT_LE(d, previous + 1e-12) << "x=" << x << " phi=" << phi;
      previous = d;
    }
  }
}

TEST(SwiftPropertyTest, IdleRestartRestoresWindow) {
  transport::SwiftConfig config;
  config.restart_cwnd = 16.0;
  transport::SwiftCC cc(config);
  // Congest hard: window collapses.
  for (int i = 0; i < 50; ++i) {
    cc.on_ack(i * 1e-3, 1.0 * sim::kMsec, 1.0, false);
  }
  EXPECT_LT(cc.cwnd_packets(), 1.0);
  cc.on_idle_restart();
  EXPECT_DOUBLE_EQ(cc.cwnd_packets(), 16.0);
  // Restart never lowers an already-large window.
  transport::SwiftCC fresh(config);
  const double before = fresh.cwnd_packets();
  fresh.on_idle_restart();
  EXPECT_DOUBLE_EQ(fresh.cwnd_packets(), before);
}

TEST(SwiftPropertyTest, WindowBoundedAcrossRandomTraces) {
  transport::SwiftConfig config;
  transport::SwiftCC cc(config);
  sim::Rng rng(123);
  double now = 0.0;
  for (int i = 0; i < 100000; ++i) {
    now += rng.exponential(2e-6);
    if (rng.bernoulli(0.01)) {
      cc.on_loss(now);
    } else {
      cc.on_ack(now, rng.exponential(12e-6), rng.uniform(0.25, 4.0),
                rng.bernoulli(0.1));
    }
    ASSERT_GE(cc.cwnd_packets(), config.min_cwnd);
    ASSERT_LE(cc.cwnd_packets(), config.max_cwnd);
  }
}

}  // namespace
}  // namespace aeq
