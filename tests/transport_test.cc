// Transport tests: Swift CC dynamics, flow reliability and message
// completion, RTT measurement, loss recovery, pacing, and host-stack demux.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fifo_queue.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "transport/host_stack.h"
#include "transport/swift.h"

namespace aeq::transport {
namespace {

TEST(SwiftTest, IncreasesBelowTarget) {
  SwiftConfig config;
  config.target_delay = 10 * sim::kUsec;
  config.max_cwnd = 64;
  SwiftCC cc(config);
  // Drive it down first so we can watch growth.
  cc.on_ack(0.0, 50 * sim::kUsec, 1.0, false);
  const double low = cc.cwnd_packets();
  double prev = low;
  for (int i = 1; i <= 50; ++i) {
    cc.on_ack(i * 1e-4, 5 * sim::kUsec, 1.0, false);
    EXPECT_GE(cc.cwnd_packets(), prev);
    prev = cc.cwnd_packets();
  }
  EXPECT_GT(cc.cwnd_packets(), low);
}

TEST(SwiftTest, DecreaseProportionalToOvershoot) {
  SwiftConfig config;
  config.target_delay = 10 * sim::kUsec;
  SwiftCC mild(config), severe(config);
  mild.on_ack(1.0, 11 * sim::kUsec, 1.0, false);
  severe.on_ack(1.0, 100 * sim::kUsec, 1.0, false);
  EXPECT_GT(mild.cwnd_packets(), severe.cwnd_packets());
  // The severe decrease is capped at max_mdf.
  EXPECT_GE(severe.cwnd_packets(),
            config.max_cwnd * (1.0 - config.max_mdf) - 1e-9);
}

TEST(SwiftTest, DecreaseAtMostOncePerRtt) {
  SwiftConfig config;
  config.target_delay = 10 * sim::kUsec;
  SwiftCC cc(config);
  cc.on_ack(0.0, 20 * sim::kUsec, 1.0, false);  // seeds srtt, first decrease
  const double after_first = cc.cwnd_packets();
  // Immediately again: inside one srtt, no further decrease.
  cc.on_ack(1 * sim::kUsec, 20 * sim::kUsec, 1.0, false);
  EXPECT_DOUBLE_EQ(cc.cwnd_packets(), after_first);
  // After an srtt has elapsed, it may decrease again.
  cc.on_ack(100 * sim::kUsec, 20 * sim::kUsec, 1.0, false);
  EXPECT_LT(cc.cwnd_packets(), after_first);
}

TEST(SwiftTest, RespectsMinCwnd) {
  SwiftConfig config;
  config.target_delay = 1 * sim::kUsec;
  SwiftCC cc(config);
  for (int i = 0; i < 200; ++i) {
    cc.on_ack(i * 1e-3, 1.0 * sim::kMsec, 1.0, false);
  }
  EXPECT_GE(cc.cwnd_packets(), config.min_cwnd);
}

// End-to-end harness: a 3-host star with host stacks.
struct Harness {
  sim::Simulator s;
  topo::Network network;
  std::vector<std::unique_ptr<HostStack>> stacks;

  explicit Harness(std::size_t hosts = 3, double fixed_window = 0.0) {
    topo::StarConfig config;
    config.num_hosts = hosts;
    config.host_queue.weights = {4.0, 1.0};
    config.switch_queue.weights = {4.0, 1.0};
    network = topo::build_star(s, config);
    for (std::size_t i = 0; i < hosts; ++i) {
      TransportConfig tc;
      stacks.push_back(std::make_unique<HostStack>(
          s, network.host(static_cast<net::HostId>(i)), hosts, tc,
          [fixed_window]() -> std::unique_ptr<CongestionControl> {
            if (fixed_window > 0) {
              return std::make_unique<FixedWindowCC>(fixed_window);
            }
            SwiftConfig sc;
            return std::make_unique<SwiftCC>(sc);
          }));
    }
  }
};

// The stack's TransportConfig is shared by reference across all of its
// flows (a flow holds a pointer, not a copy), so mutating it once any flow
// exists would change transport behaviour mid-run. mutable_config() permits
// setup-time tuning and traps everything after the first flow.
TEST(HostStackDeathTest, ConfigIsImmutableOnceAFlowExists) {
  Harness h;
  h.stacks[0]->mutable_config().min_rto = 1 * sim::kMsec;  // fine: no flows
  SendRequest request;
  request.dst = 1;
  request.qos = 0;
  request.bytes = 1000;
  request.rpc_id = 1;
  h.stacks[0]->send_message(request, [](const MessageCompletion&) {});
  h.s.run();
  EXPECT_EQ(h.stacks[0]->config().min_rto, 1 * sim::kMsec);
  EXPECT_DEATH((void)h.stacks[0]->mutable_config(),
               "TransportConfig is immutable once a flow exists");
}

TEST(FlowTest, SingleMessageCompletes) {
  Harness h;
  std::vector<MessageCompletion> done;
  SendRequest request;
  request.dst = 1;
  request.qos = 0;
  request.bytes = 32 * sim::kKiB;
  request.rpc_id = 1;
  h.stacks[0]->send_message(request,
                            [&](const MessageCompletion& c) { done.push_back(c); });
  h.s.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].bytes, 32 * sim::kKiB);
  EXPECT_FALSE(done[0].terminated);
  // 32KB at 100G through 2 hops + ack: a handful of microseconds.
  EXPECT_GT(done[0].rnl(), 2 * sim::kUsec);
  EXPECT_LT(done[0].rnl(), 20 * sim::kUsec);
  EXPECT_EQ(h.stacks[1]->bytes_delivered(), 32 * sim::kKiB);
}

TEST(FlowTest, ManyMessagesCompleteInOrder) {
  Harness h;
  std::vector<std::uint64_t> completed;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    SendRequest request;
    request.dst = 2;
    request.qos = 1;
    request.bytes = 10000;
    request.rpc_id = i;
    h.stacks[0]->send_message(
        request, [&completed](const MessageCompletion& c) {
          completed.push_back(c.rpc_id);
        });
  }
  h.s.run();
  ASSERT_EQ(completed.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(completed[i], i + 1);
}

TEST(FlowTest, RnlIncludesSenderQueueing) {
  Harness h;
  std::vector<MessageCompletion> done;
  // Queue 100 messages at once on one flow; later messages wait behind
  // earlier ones, so their RNL must grow roughly linearly.
  for (std::uint64_t i = 1; i <= 100; ++i) {
    SendRequest request;
    request.dst = 1;
    request.qos = 0;
    request.bytes = 32 * sim::kKiB;
    request.rpc_id = i;
    h.stacks[0]->send_message(
        request, [&](const MessageCompletion& c) { done.push_back(c); });
  }
  h.s.run();
  ASSERT_EQ(done.size(), 100u);
  // 32KB at 100Gbps is 2.62us of serialization per message.
  EXPECT_GT(done.back().rnl(), 50 * 2.6 * sim::kUsec);
  EXPECT_GT(done.back().rnl(), 2.0 * done.front().rnl());
}

TEST(FlowTest, SurvivesPacketLossViaRetransmission) {
  // Tiny switch buffers + fixed large window force drops.
  sim::Simulator s;
  topo::StarConfig config;
  config.num_hosts = 3;
  config.host_queue.weights = {4.0, 1.0};
  config.switch_queue.weights = {4.0, 1.0};
  config.switch_queue.capacity_bytes = 20000;  // ~5 MTUs
  topo::Network network = topo::build_star(s, config);
  std::vector<std::unique_ptr<HostStack>> stacks;
  for (std::size_t i = 0; i < 3; ++i) {
    TransportConfig tc;
    tc.min_rto = 50 * sim::kUsec;
    stacks.push_back(std::make_unique<HostStack>(
        s, network.host(static_cast<net::HostId>(i)), 3, tc,
        [] { return std::make_unique<FixedWindowCC>(64.0); }));
  }
  int done = 0;
  for (net::HostId src : {0, 1}) {
    SendRequest request;
    request.dst = 2;
    request.qos = 0;
    request.bytes = 1 * sim::kMiB;
    request.rpc_id = static_cast<std::uint64_t>(src) + 1;
    stacks[static_cast<std::size_t>(src)]->send_message(
        request, [&](const MessageCompletion&) { ++done; });
  }
  s.run_until(1.0);
  EXPECT_EQ(done, 2);
  // Drops must actually have happened for this test to mean anything.
  EXPECT_GT(network.downlink(2).queue().stats().dropped_packets, 0u);
  EXPECT_EQ(stacks[2]->bytes_delivered(), 2 * sim::kMiB);
}

TEST(FlowTest, QoSLevelsUseSeparateFlows) {
  Harness h;
  auto& f0 = h.stacks[0]->flow_to(1, 0);
  auto& f1 = h.stacks[0]->flow_to(1, 1);
  EXPECT_NE(f0.flow_id(), f1.flow_id());
  EXPECT_EQ(&f0, &h.stacks[0]->flow_to(1, 0));
}

TEST(FlowTest, BytesDeliveredPerQosTracked) {
  Harness h;
  int done = 0;
  for (net::QoSLevel qos : {0, 1}) {
    SendRequest request;
    request.dst = 1;
    request.qos = qos;
    request.bytes = 10000;
    request.rpc_id = qos + 1u;
    h.stacks[0]->send_message(request,
                              [&](const MessageCompletion&) { ++done; });
  }
  h.s.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(h.stacks[1]->bytes_delivered(0), 10000u);
  EXPECT_EQ(h.stacks[1]->bytes_delivered(1), 10000u);
}

TEST(FlowTest, SubPacketWindowStillMakesProgress) {
  Harness h(3, /*fixed_window=*/0.3);  // cwnd < 1 packet => paced
  int done = 0;
  SendRequest request;
  request.dst = 1;
  request.qos = 0;
  request.bytes = 64 * sim::kKiB;
  request.rpc_id = 1;
  h.stacks[0]->send_message(request, [&](const MessageCompletion&) { ++done; });
  h.s.run_until(0.1);
  EXPECT_EQ(done, 1);
}

}  // namespace
}  // namespace aeq::transport
