// Tests for the tooling layers added around the core reproduction: CSV
// export, log-scale histograms, RPC trace parse/replay round-trips, the
// CLI flag parser, and DCTCP with ECN marking.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "net/fifo_queue.h"
#include "runner/experiment.h"
#include "stats/export.h"
#include "stats/log_histogram.h"
#include "tools/flags.h"
#include "transport/dctcp.h"
#include "workload/trace.h"

namespace aeq {
namespace {

TEST(ExportTest, TimeSeriesCsv) {
  stats::TimeSeries series;
  series.record(0.5, 1.0);
  series.record(1.5, 2.0);
  std::ostringstream out;
  stats::write_csv(out, series, "throughput");
  EXPECT_EQ(out.str(), "t,throughput\n0.5,1\n1.5,2\n");
}

TEST(ExportTest, QuantilesCsvHasRequestedRows) {
  stats::PercentileTracker tracker;
  for (int i = 1; i <= 100; ++i) tracker.add(i);
  std::ostringstream out;
  stats::write_quantiles_csv(out, tracker, {50.0, 99.0});
  EXPECT_EQ(out.str(), "percentile,value\n50,50\n99,99\n");
}

TEST(ExportTest, HistogramCsvParsable) {
  stats::Histogram histogram(0, 10, 5);
  histogram.add(1.0);
  histogram.add(9.0);
  std::ostringstream out;
  stats::write_csv(out, histogram);
  std::string line;
  std::istringstream in(out.str());
  std::getline(in, line);
  EXPECT_EQ(line, "bin_lower,count,cdf");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 5);
}

TEST(ExportTest, MultiSeriesSharedAxis) {
  stats::TimeSeries a, b;
  a.record(0.0, 1.0);
  a.record(10.0, 2.0);
  b.record(5.0, 7.0);
  std::ostringstream out;
  stats::write_csv(out, {{"a", &a}, {"b", &b}}, 3);
  EXPECT_EQ(out.str(), "t,a,b\n0,1,0\n5,1,7\n10,2,7\n");
}

TEST(LogHistogramTest, PercentileWithinRelativeError) {
  stats::LogHistogram histogram(1.0, 1e6, 0.01);
  sim::Rng rng(4);
  std::vector<double> values;
  for (int i = 0; i < 50000; ++i) {
    const double v = std::exp(rng.uniform(0.0, 13.0));  // log-uniform
    values.push_back(v);
    histogram.add(v);
  }
  std::sort(values.begin(), values.end());
  for (double pct : {50.0, 90.0, 99.0, 99.9}) {
    const double exact =
        values[static_cast<std::size_t>(pct / 100 * (values.size() - 1))];
    EXPECT_NEAR(histogram.percentile(pct) / exact, 1.0, 0.03)
        << "pct " << pct;
  }
}

TEST(LogHistogramTest, ClampsAndMerges) {
  stats::LogHistogram a(1.0, 1000.0), b(1.0, 1000.0);
  a.add(0.5);     // clamps to 1
  a.add(5000.0);  // clamps to 1000
  b.add(10.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_LE(a.percentile(100.0), 1000.0 * 1.03);
}

TEST(TraceTest, ParseWriteRoundTrip) {
  std::vector<workload::TraceRecord> records = {
      {0.001, 0, 1, rpc::Priority::kPC, 32768, 0.0},
      {0.002, 1, 2, rpc::Priority::kBE, 1048576, 0.0005},
  };
  std::ostringstream out;
  workload::write_trace_csv(out, records);
  std::istringstream in(out.str());
  const auto parsed = workload::parse_trace_csv(in);
  EXPECT_TRUE(parsed.errors.empty());
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[0], records[0]);
  EXPECT_EQ(parsed.records[1], records[1]);
}

TEST(TraceTest, RejectsMalformedLines) {
  std::istringstream in(
      "time,src,dst,priority,bytes\n"
      "0.1,0,1,PC,1000\n"
      "garbage\n"
      "0.2,0,0,PC,1000\n"     // src == dst
      "0.3,0,1,WAT,1000\n"    // bad priority
      "# comment\n"
      "0.4,1,0,nc,4096\n");
  const auto parsed = workload::parse_trace_csv(in);
  EXPECT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.errors.size(), 3u);
  EXPECT_EQ(parsed.records[1].priority, rpc::Priority::kNC);
}

TEST(TraceTest, ReplayIssuesThroughStacks) {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 3;
  config.enable_aequitas = false;
  config.slo = rpc::SloConfig::make(
      {15 * sim::kUsec, 25 * sim::kUsec, 0.0}, 99.9);
  runner::Experiment experiment(config);
  std::vector<workload::TraceRecord> records = {
      {1 * sim::kUsec, 0, 1, rpc::Priority::kPC, 4096, 0.0},
      {2 * sim::kUsec, 1, 2, rpc::Priority::kBE, 8192, 0.0},
      {3 * sim::kUsec, 9, 1, rpc::Priority::kPC, 4096, 0.0},  // bad src
  };
  std::vector<rpc::RpcStack*> stacks;
  for (net::HostId h = 0; h < 3; ++h) stacks.push_back(&experiment.stack(h));
  const auto stats = workload::replay_trace(experiment.simulator(), records,
                                            stacks);
  EXPECT_EQ(stats.scheduled, 2u);
  EXPECT_EQ(stats.skipped, 1u);
  experiment.simulator().run();
  EXPECT_EQ(experiment.metrics().total_completed(), 2u);
}

TEST(FlagsTest, ParsesFormsAndTypes) {
  const char* argv[] = {"prog", "--hosts=12",   "--load", "0.5",
                        "--aequitas=off", "--mix=0.5,0.3,0.2", "--verbose"};
  tools::Flags flags;
  ASSERT_TRUE(flags.parse(7, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("hosts", 0), 12);
  EXPECT_DOUBLE_EQ(flags.get_double("load", 0), 0.5);
  EXPECT_FALSE(flags.get_bool("aequitas", true));
  EXPECT_TRUE(flags.get_bool("verbose", false));
  const auto mix = flags.get_list("mix", {});
  ASSERT_EQ(mix.size(), 3u);
  EXPECT_DOUBLE_EQ(mix[1], 0.3);
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_TRUE(flags.unused().empty());
}

TEST(FlagsTest, ReportsUnusedAndErrors) {
  const char* argv[] = {"prog", "--typo=1"};
  tools::Flags flags;
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_EQ(flags.unused().size(), 1u);
  const char* bad[] = {"prog", "nodashes"};
  tools::Flags broken;
  EXPECT_FALSE(broken.parse(2, const_cast<char**>(bad)));
  EXPECT_FALSE(broken.error().empty());
}

TEST(DctcpTest, CutProportionalToMarkedFraction) {
  transport::DctcpConfig config;
  config.initial_cwnd = 100.0;
  config.max_cwnd = 100.0;
  transport::DctcpCC cc(config);
  // One full window, all marked: alpha rises toward g, cut by alpha/2.
  for (int i = 0; i < 100; ++i) {
    cc.on_ack(i * 1e-6, 10e-6, 1.0, true);
  }
  EXPECT_GT(cc.alpha(), 0.0);
  EXPECT_LT(cc.cwnd_packets(), 100.0);
  // Unmarked traffic: grows again.
  const double low = cc.cwnd_packets();
  for (int i = 0; i < 200; ++i) {
    cc.on_ack(1e-3 + i * 1e-6, 10e-6, 1.0, false);
  }
  EXPECT_GT(cc.cwnd_packets(), low);
}

TEST(DctcpTest, AlphaDecaysWithoutMarks) {
  transport::DctcpConfig config;
  transport::DctcpCC cc(config);
  for (int i = 0; i < 64; ++i) cc.on_ack(i * 1e-6, 10e-6, 1.0, true);
  const double alpha_high = cc.alpha();
  for (int i = 0; i < 2000; ++i) {
    cc.on_ack(1e-3 + i * 1e-6, 10e-6, 1.0, false);
  }
  EXPECT_LT(cc.alpha(), alpha_high);
}

TEST(EcnTest, QueueMarksPastThreshold) {
  net::FifoQueue queue;
  queue.set_ecn_threshold(3000);
  net::Packet p;
  p.size_bytes = 1000;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.enqueue(p));
  // Backlog after first dequeue is 4000 >= 3000: marked.
  auto first = queue.dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->ecn_ce);
  queue.dequeue();
  queue.dequeue();
  // Backlog now 1000 < 3000: unmarked.
  auto last = queue.dequeue();
  ASSERT_TRUE(last.has_value());
  EXPECT_FALSE(last->ecn_ce);
}

TEST(EcnTest, DctcpExperimentRunsEndToEnd) {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  config.cc_kind = runner::ExperimentConfig::CcKind::kDctcp;
  config.enable_aequitas = true;
  config.slo = rpc::SloConfig::make({25.0 / 8 * sim::kUsec, 0.0}, 99.9);
  runner::Experiment experiment(config);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  workload::GeneratorConfig gen;
  gen.classes = {{rpc::Priority::kPC, 0.6 * sim::gbps(100), sizes, 0.0},
                 {rpc::Priority::kBE, 0.4 * sim::gbps(100), sizes, 0.0}};
  experiment.add_generator(0, gen, workload::fixed_destination(2));
  experiment.add_generator(1, gen, workload::fixed_destination(2));
  experiment.run(5 * sim::kMsec, 10 * sim::kMsec);
  EXPECT_GT(experiment.metrics().total_completed(), 1000u);
  // Admission still keeps the high class within sane bounds over DCTCP.
  EXPECT_LT(experiment.metrics().rnl_by_run_qos(0).p999(),
            6 * 25 * sim::kUsec);
}

}  // namespace
}  // namespace aeq
