// Tests for the baseline protocol stacks: pFabric SRPT behaviour, QJump
// host rate limiting, Homa grants and priorities, and the D3/PDQ deadline
// fabric (allocation, pausing, termination).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runner/protocol_experiment.h"

namespace aeq::protocols {
namespace {

using runner::BaselineProtocol;
using runner::ProtocolExperiment;
using runner::ProtocolExperimentConfig;

ProtocolExperimentConfig base_config(BaselineProtocol protocol,
                                     std::size_t hosts = 3) {
  ProtocolExperimentConfig config;
  config.protocol = protocol;
  config.num_hosts = hosts;
  config.num_qos = 3;
  config.slo = rpc::SloConfig::make(
      {15 * sim::kUsec, 25 * sim::kUsec, 0.0}, 99.9);
  return config;
}

TEST(PfabricTest, SingleMessageCompletes) {
  ProtocolExperiment experiment(base_config(BaselineProtocol::kPfabric));
  rpc::RpcRecord done;
  experiment.stack(0).set_completion_listener(
      [&](const rpc::RpcRecord& r) { done = r; });
  experiment.stack(0).issue(1, rpc::Priority::kPC, 32 * sim::kKiB);
  experiment.simulator().run();
  EXPECT_EQ(done.bytes, 32 * sim::kKiB);
  EXPECT_FALSE(done.terminated);
  EXPECT_GT(done.rnl, 0.0);
  EXPECT_LT(done.rnl, 50 * sim::kUsec);
}

TEST(PfabricTest, SmallMessageBeatsLargeUnderContention) {
  // Start a huge transfer, then a small one on the same bottleneck: SRPT
  // should let the small message finish almost as if the link were idle.
  ProtocolExperiment experiment(base_config(BaselineProtocol::kPfabric));
  sim::Time small_rnl = 0.0;
  experiment.stack(0).issue(2, rpc::Priority::kBE, 8 * sim::kMiB);
  experiment.stack(1).set_completion_listener(
      [&](const rpc::RpcRecord& r) { small_rnl = r.rnl; });
  experiment.simulator().schedule_in(50 * sim::kUsec, [&] {
    experiment.stack(1).issue(2, rpc::Priority::kPC, 16 * sim::kKiB);
  });
  experiment.simulator().run_until(5 * sim::kMsec);
  EXPECT_GT(small_rnl, 0.0);
  EXPECT_LT(small_rnl, 30 * sim::kUsec);
}

TEST(PfabricTest, SurvivesTinyBufferDrops) {
  auto config = base_config(BaselineProtocol::kPfabric);
  config.pfabric_buffer_bytes = 32 * 1024;  // 8 packets
  ProtocolExperiment experiment(config);
  int done = 0;
  for (net::HostId src : {0, 1}) {
    experiment.stack(src).set_completion_listener(
        [&](const rpc::RpcRecord&) { ++done; });
    experiment.stack(src).issue(2, rpc::Priority::kPC, 1 * sim::kMiB);
  }
  experiment.simulator().run_until(50 * sim::kMsec);
  EXPECT_EQ(done, 2);
  EXPECT_GT(experiment.network()
                .downlink(2)
                .queue()
                .stats()
                .dropped_packets,
            0u);
}

TEST(QjumpTest, HighLevelRateLimited) {
  auto config = base_config(BaselineProtocol::kQjump);
  config.qjump_level_rate_fraction = {0.05, 0.20, 0.0};
  ProtocolExperiment experiment(config);
  sim::Time done_at = 0.0;
  experiment.stack(0).set_completion_listener(
      [&](const rpc::RpcRecord& r) { done_at = r.completed; });
  // 1MB on the 5Gbps-limited top level: >= 1.6ms just to serialize.
  experiment.stack(0).issue(1, rpc::Priority::kPC, 1 * sim::kMiB);
  experiment.simulator().run();
  EXPECT_GT(done_at, 1.6 * sim::kMsec);
}

TEST(QjumpTest, UnthrottledLowLevelRunsAtLineRate) {
  ProtocolExperiment experiment(base_config(BaselineProtocol::kQjump));
  sim::Time done_at = 0.0;
  experiment.stack(0).set_completion_listener(
      [&](const rpc::RpcRecord& r) { done_at = r.completed; });
  experiment.stack(0).issue(1, rpc::Priority::kBE, 1 * sim::kMiB);
  experiment.simulator().run();
  // 1MB at 100G is ~84us serialization + RTT.
  EXPECT_LT(done_at, 300 * sim::kUsec);
}

TEST(HomaTest, MessageLargerThanRttBytesNeedsGrants) {
  ProtocolExperiment experiment(base_config(BaselineProtocol::kHoma));
  rpc::RpcRecord done;
  experiment.stack(0).set_completion_listener(
      [&](const rpc::RpcRecord& r) { done = r; });
  experiment.stack(0).issue(1, rpc::Priority::kNC, 512 * sim::kKiB);
  experiment.simulator().run();
  EXPECT_EQ(done.bytes, 512 * sim::kKiB);
  EXPECT_FALSE(done.terminated);
}

TEST(HomaTest, SmallMessagePreferredUnderContention) {
  ProtocolExperiment experiment(base_config(BaselineProtocol::kHoma));
  sim::Time small_rnl = 0.0;
  experiment.stack(0).issue(2, rpc::Priority::kBE, 4 * sim::kMiB);
  experiment.stack(1).set_completion_listener(
      [&](const rpc::RpcRecord& r) { small_rnl = r.rnl; });
  experiment.simulator().schedule_in(100 * sim::kUsec, [&] {
    experiment.stack(1).issue(2, rpc::Priority::kPC, 8 * sim::kKiB);
  });
  experiment.simulator().run_until(20 * sim::kMsec);
  EXPECT_GT(small_rnl, 0.0);
  EXPECT_LT(small_rnl, 30 * sim::kUsec);
}

TEST(DeadlineFabricTest, D3GrantsRequestedRatesFcfs) {
  sim::Simulator s;
  DeadlineFabric fabric(s, DeadlineMode::kD3, 100.0, 10 * sim::kUsec);
  std::vector<double> rates(2, -1.0);
  std::vector<bool> killed(2, false);
  // Flow 0 wants 80, flow 1 wants 50: FCFS grants 80 then 20(+base).
  fabric.register_flow(1, 0, /*deadline=*/1.0, /*remaining=*/80,
                       [&](double r, bool t) { rates[0] = r; killed[0] = t; });
  fabric.register_flow(2, 0, 1.0, 50,
                       [&](double r, bool t) { rates[1] = r; killed[1] = t; });
  s.run_until(15 * sim::kUsec);
  EXPECT_FALSE(killed[0]);
  EXPECT_GE(rates[0], 80.0 / 1.0 * 0.9);  // desired ~80 bytes/sec
  EXPECT_GE(rates[1], 0.0);
}

TEST(DeadlineFabricTest, D3TerminatesInfeasibleDeadline) {
  sim::Simulator s;
  DeadlineFabric fabric(s, DeadlineMode::kD3, 100.0, 10 * sim::kUsec);
  bool killed_late = false;
  // Needs 10000 bytes in 1s over a 100 B/s link: infeasible even alone.
  fabric.register_flow(1, 0, 1.0, 10000,
                       [&](double, bool t) { killed_late |= t; });
  s.run_until(50 * sim::kUsec);
  EXPECT_TRUE(killed_late);
  EXPECT_GE(fabric.flows_terminated(), 1u);
}

TEST(DeadlineFabricTest, PdqServesEarliestDeadlineFirst) {
  sim::Simulator s;
  DeadlineFabric fabric(s, DeadlineMode::kPdq, 100.0, 10 * sim::kUsec);
  double rate_late = -1.0, rate_early = -1.0;
  fabric.register_flow(1, 0, /*deadline=*/2.0, /*remaining=*/50,
                       [&](double r, bool) { rate_late = r; });
  fabric.register_flow(2, 0, /*deadline=*/1.0, 50,
                       [&](double r, bool) { rate_early = r; });
  s.run_until(15 * sim::kUsec);
  EXPECT_DOUBLE_EQ(rate_early, 100.0);  // head of EDF: full rate
  EXPECT_LT(rate_late, 5.0);            // probe rate or paused
}

TEST(DeadlineFabricTest, PdqTerminatesFlowsThatCannotMakeIt) {
  sim::Simulator s;
  DeadlineFabric fabric(s, DeadlineMode::kPdq, 100.0, 10 * sim::kUsec);
  bool killed = false;
  fabric.register_flow(1, 0, 1.0, 90, [](double, bool) {});
  // Behind 0.9s of work, needs to finish 90 bytes by t=1.0: infeasible.
  fabric.register_flow(2, 0, 1.0, 90,
                       [&](double, bool t) { killed |= t; });
  s.run_until(15 * sim::kUsec);
  EXPECT_TRUE(killed);
}

TEST(D3Test, EndToEndCompletesWithDeadline) {
  ProtocolExperiment experiment(base_config(BaselineProtocol::kD3));
  rpc::RpcRecord done;
  experiment.stack(0).set_completion_listener(
      [&](const rpc::RpcRecord& r) { done = r; });
  experiment.stack(0).issue(1, rpc::Priority::kPC, 64 * sim::kKiB,
                            /*deadline_budget=*/1 * sim::kMsec);
  experiment.simulator().run_until(5 * sim::kMsec);
  EXPECT_EQ(done.bytes, 64 * sim::kKiB);
  EXPECT_FALSE(done.terminated);
}

TEST(D3Test, OverloadTerminatesSomeDeadlineFlows) {
  ProtocolExperiment experiment(base_config(BaselineProtocol::kD3, 5));
  int terminated = 0, completed = 0;
  for (net::HostId src = 0; src < 4; ++src) {
    experiment.stack(src).set_completion_listener(
        [&](const rpc::RpcRecord& r) {
          r.terminated ? ++terminated : ++completed;
        });
    // 4 x 2MB to one host with 300us deadlines: ~650us of serialization
    // demand; most cannot make it.
    experiment.stack(src).issue(4, rpc::Priority::kPC, 2 * sim::kMiB,
                                300 * sim::kUsec);
  }
  experiment.simulator().run_until(10 * sim::kMsec);
  EXPECT_GT(terminated, 0);
  EXPECT_EQ(terminated + completed, 4);
}

TEST(PdqTest, EndToEndPreemptionStillCompletesAll) {
  ProtocolExperiment experiment(base_config(BaselineProtocol::kPdq, 4));
  int completed = 0, terminated = 0;
  for (net::HostId src = 0; src < 3; ++src) {
    experiment.stack(src).set_completion_listener(
        [&](const rpc::RpcRecord& r) {
          r.terminated ? ++terminated : ++completed;
        });
    experiment.stack(src).issue(3, rpc::Priority::kPC, 256 * sim::kKiB,
                                (src + 1) * 1 * sim::kMsec);
  }
  experiment.simulator().run_until(20 * sim::kMsec);
  // Generous staggered deadlines: EDF should complete all three.
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(terminated, 0);
}

TEST(ProtocolExperimentTest, GoodputUtilizationBounded) {
  ProtocolExperiment experiment(base_config(BaselineProtocol::kPfabric));
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  workload::GeneratorConfig gen;
  gen.classes = {{rpc::Priority::kPC, 0.3 * sim::gbps(100), sizes, 0.0}};
  experiment.add_generator(0, gen, workload::fixed_destination(2));
  experiment.run(1 * sim::kMsec, 5 * sim::kMsec);
  EXPECT_GT(experiment.goodput_utilization(), 0.9);
  EXPECT_LE(experiment.goodput_utilization(), 1.0);
}

}  // namespace
}  // namespace aeq::protocols
