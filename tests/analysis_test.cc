// Tests for the network-calculus analysis: closed-form 2-QoS delay bounds
// (Eq 1 / Eq 8), the GPS fluid simulator, cross-validation between the two,
// and admissible-region tooling.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/admissible.h"
#include "analysis/fluid.h"
#include "analysis/wfq_delay.h"

namespace aeq::analysis {
namespace {

TEST(WfqDelayTest, PaperWorkedExample) {
  // Appendix B.2: phi=4, rho=2, mu=0.8 gives Delay_h = 0 for x<=0.4,
  // x-0.4 for 0.4<x<=0.8, 0.4 for x>0.8.
  TwoQosParams p{.phi = 4.0, .mu = 0.8, .rho = 2.0};
  EXPECT_DOUBLE_EQ(delay_high(p, 0.2), 0.0);
  EXPECT_DOUBLE_EQ(delay_high(p, 0.4), 0.0);
  EXPECT_NEAR(delay_high(p, 0.5), 0.1, 1e-12);
  EXPECT_NEAR(delay_high(p, 0.8), 0.4, 1e-12);
  EXPECT_NEAR(delay_high(p, 0.9), 0.4, 1e-12);
  EXPECT_NEAR(delay_high(p, 0.99), 0.4, 1e-12);
}

TEST(WfqDelayTest, ZeroDelayWithinGuaranteedRate) {
  TwoQosParams p{.phi = 4.0, .mu = 0.8, .rho = 1.2};
  // x <= phi/(phi+1)/rho = 0.666..: no delay for QoS_h.
  EXPECT_DOUBLE_EQ(delay_high(p, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(delay_high(p, 0.6), 0.0);
  EXPECT_GT(delay_high(p, 0.7), 0.0);
}

TEST(WfqDelayTest, ContinuityAcrossCaseBoundaries) {
  // The piecewise formula must be continuous in x for many parameter sets.
  // The steepest segment has slope <= mu * (phi + 1) (case L4/H2 family), so
  // a step of dx may move the value by at most ~mu*(phi+1)*dx; allow 2x.
  const double dx = 0.001;
  for (double phi : {1.0, 2.0, 4.0, 8.0, 50.0}) {
    for (double rho : {1.1, 1.4, 2.0, 3.0}) {
      TwoQosParams p{.phi = phi, .mu = 0.8, .rho = rho};
      const double tolerance = 2.0 * p.mu * (phi + 1.0) * dx + 1e-9;
      double prev_h = delay_high(p, dx);
      double prev_l = delay_low(p, dx);
      for (double x = 2 * dx; x < 0.999; x += dx) {
        const double h = delay_high(p, x);
        const double l = delay_low(p, x);
        EXPECT_NEAR(h, prev_h, tolerance)
            << "discontinuity in delay_high at x=" << x << " phi=" << phi
            << " rho=" << rho;
        EXPECT_NEAR(l, prev_l, tolerance)
            << "discontinuity in delay_low at x=" << x << " phi=" << phi
            << " rho=" << rho;
        prev_h = h;
        prev_l = l;
      }
    }
  }
}

TEST(WfqDelayTest, SymmetryBetweenClasses) {
  // With equal weights, Delay_h(x) == Delay_l(1-x).
  TwoQosParams p{.phi = 1.0, .mu = 0.8, .rho = 1.5};
  for (double x = 0.05; x < 1.0; x += 0.05) {
    EXPECT_NEAR(delay_high(p, x), delay_low(p, 1.0 - x), 1e-9) << "x=" << x;
  }
}

TEST(WfqDelayTest, InfiniteWeightLimit) {
  // As phi grows, delay_high approaches the Eq-4 limit.
  TwoQosParams limit{.phi = 1e9, .mu = 0.8, .rho = 1.25};
  for (double x = 0.05; x < 1.0; x += 0.05) {
    EXPECT_NEAR(delay_high(limit, x), delay_high_infinite_weight(limit, x),
                1e-6)
        << "x=" << x;
  }
}

TEST(WfqDelayTest, PriorityInversionBeyondBoundary) {
  TwoQosParams p{.phi = 4.0, .mu = 0.8, .rho = 1.2};
  const double boundary = inversion_boundary(p);
  EXPECT_DOUBLE_EQ(boundary, 0.8);
  // Inside the admissible region QoS_h is no worse than QoS_l.
  for (double x = 0.05; x < boundary - 1e-9; x += 0.05) {
    EXPECT_LE(delay_high(p, x), delay_low(p, x) + 1e-9) << "x=" << x;
  }
  // Past the boundary the ordering flips (where QoS_l has drained).
  EXPECT_GT(delay_high(p, 0.95), delay_low(p, 0.95));
}

TEST(WfqDelayTest, GuaranteedShareMatchesZeroDelayBoundary) {
  // §5.2: traffic up to r * w * mu/rho is always admitted because it sees
  // zero delay — i.e. expressed as a share of arrivals (x = X/(mu*r)) it is
  // exactly the case-1 boundary w/rho of Equation 1.
  for (double phi : {2.0, 4.0, 8.0}) {
    for (double rho : {1.2, 1.6, 2.2}) {
      const analysis::TwoQosParams p{.phi = phi, .mu = 0.8, .rho = rho};
      const double w = phi / (phi + 1.0);
      const double boundary_share =
          analysis::guaranteed_admitted_share(w, p.mu, p.rho) / p.mu;
      EXPECT_NEAR(boundary_share, w / rho, 1e-12);
      EXPECT_DOUBLE_EQ(analysis::delay_high(p, boundary_share - 1e-6), 0.0);
      EXPECT_GT(analysis::delay_high(p, boundary_share + 1e-3), 0.0);
    }
  }
}

TEST(WfqDelayTest, GuaranteedAdmittedShare) {
  // Section 5.2: X_i <= r * (phi_i/sum phi) * mu/rho.
  EXPECT_DOUBLE_EQ(guaranteed_admitted_share(0.8, 0.8, 1.6), 0.4);
  EXPECT_DOUBLE_EQ(guaranteed_admitted_share(1.0, 0.9, 1.8), 0.5);
}

TEST(GpsAllocateTest, WorkConservingUnderload) {
  const auto alloc = gps_allocate({0.3, 0.2}, {false, false}, {4.0, 1.0}, 1.0);
  EXPECT_DOUBLE_EQ(alloc[0], 0.3);
  EXPECT_DOUBLE_EQ(alloc[1], 0.2);
}

TEST(GpsAllocateTest, WeightedSplitWhenAllBacklogged) {
  const auto alloc = gps_allocate({0.0, 0.0}, {true, true}, {4.0, 1.0}, 1.0);
  EXPECT_DOUBLE_EQ(alloc[0], 0.8);
  EXPECT_DOUBLE_EQ(alloc[1], 0.2);
}

TEST(GpsAllocateTest, ExcessRedistributed) {
  // Class 0 needs only 0.1; class 1 (backlogged) absorbs the rest.
  const auto alloc = gps_allocate({0.1, 0.0}, {false, true}, {4.0, 1.0}, 1.0);
  EXPECT_DOUBLE_EQ(alloc[0], 0.1);
  EXPECT_DOUBLE_EQ(alloc[1], 0.9);
}

TEST(GpsAllocateTest, CascadedCaps) {
  // Three classes; two capped below their fair share in sequence.
  const auto alloc =
      gps_allocate({0.05, 0.10, 0.0}, {false, false, true}, {8.0, 4.0, 1.0},
                   1.0);
  EXPECT_DOUBLE_EQ(alloc[0], 0.05);
  EXPECT_DOUBLE_EQ(alloc[1], 0.10);
  EXPECT_NEAR(alloc[2], 0.85, 1e-12);
}

// Property: the fluid simulator must match the closed form for 2 QoS levels
// across the (phi, rho, x) grid.
class FluidVsClosedForm
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FluidVsClosedForm, MatchesEquationOne) {
  const auto [phi, rho] = GetParam();
  TwoQosParams p{.phi = phi, .mu = 0.8, .rho = rho};
  for (double x = 0.05; x < 1.0; x += 0.05) {
    FluidConfig config;
    config.weights = {phi, 1.0};
    config.shares = {x, 1.0 - x};
    config.mu = p.mu;
    config.rho = p.rho;
    const FluidResult result = simulate_fluid(config);
    EXPECT_NEAR(result.delay[0], delay_high(p, x), 1e-6)
        << "QoS_h phi=" << phi << " rho=" << rho << " x=" << x;
    EXPECT_NEAR(result.delay[1], delay_low(p, x), 1e-6)
        << "QoS_l phi=" << phi << " rho=" << rho << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, FluidVsClosedForm,
    ::testing::Combine(::testing::Values(1.0, 2.0, 4.0, 8.0, 50.0),
                       ::testing::Values(1.1, 1.2, 1.4, 2.0, 2.5)));

TEST(FluidTest, ThreeClassSanity) {
  // Figure 9(a) setting: weights 8:4:1, mu=0.8, rho=1.4, QoS_m:QoS_l = 2:1.
  FluidConfig config;
  config.weights = {8.0, 4.0, 1.0};
  config.mu = 0.8;
  config.rho = 1.4;
  config.shares = {0.4, 0.4, 0.2};
  const FluidResult result = simulate_fluid(config);
  ASSERT_EQ(result.delay.size(), 3u);
  // At 40% QoS_h share the high class is within its guarantee: no delay.
  EXPECT_NEAR(result.delay[0], 0.0, 1e-9);
  EXPECT_GT(result.delay[2], result.delay[1]);
}

TEST(FluidTest, TotalServiceConserved) {
  FluidConfig config;
  config.weights = {8.0, 4.0, 1.0};
  config.mu = 0.7;
  config.rho = 1.6;
  config.shares = {0.5, 0.3, 0.2};
  const FluidResult result = simulate_fluid(config);
  // Everything drains within the period since mu < 1.
  for (double drain : result.drain_time) EXPECT_LE(drain, 1.0 + 1e-9);
}

TEST(AdmissibleTest, MaxShareWithinSloMonotoneInSlo) {
  TwoQosParams p{.phi = 4.0, .mu = 0.8, .rho = 1.4};
  const double strict = max_share_within_slo(p, 0.01);
  const double loose = max_share_within_slo(p, 0.10);
  EXPECT_LT(strict, loose);
  EXPECT_GT(strict, 0.0);
}

TEST(AdmissibleTest, MaxAdmissibleShareNearLemmaBoundary) {
  TwoQosParams p{.phi = 4.0, .mu = 0.8, .rho = 1.2};
  const double x_max = max_admissible_share(p);
  // Lemma 1 predicts inversion beyond phi/(phi+1) = 0.8 — but inversion can
  // bind slightly later because QoS_l keeps draining; the numeric boundary
  // must be at or beyond the lemma's.
  EXPECT_GE(x_max, 0.8 - 1e-6);
  EXPECT_LT(x_max, 0.95);
}

TEST(AdmissibleTest, SweepShapesMatchFigure9) {
  // Increasing QoS_h weight from 8 to 50 moves the inversion point right.
  auto inversion_point = [](double w_high) {
    const auto sweep = sweep_qosh_share({w_high, 4.0, 1.0}, {2.0, 1.0}, 0.8,
                                        1.4, 0.05, 0.95, 91);
    for (const auto& point : sweep) {
      if (point.delay[0] > point.delay[1] + 1e-9) return point.qosh_share;
    }
    return 1.0;
  };
  EXPECT_GT(inversion_point(50.0), inversion_point(8.0));
}

TEST(AdmissibleTest, IsAdmissibleAgreesWithDelayOrdering) {
  FluidConfig config;
  config.weights = {8.0, 4.0, 1.0};
  config.mu = 0.8;
  config.rho = 1.4;
  config.shares = {0.3, 0.4, 0.3};
  EXPECT_TRUE(is_admissible(config));
  config.shares = {0.93, 0.05, 0.02};
  EXPECT_FALSE(is_admissible(config));
}

}  // namespace
}  // namespace aeq::analysis
