// Unit tests for the discrete-event core: ordering, determinism,
// cancellation, clock semantics, and RNG behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace aeq::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().handler();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().handler();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.schedule(1.0, [&] { ran = true; });
  q.schedule(2.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().handler();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueueTest, CancelAfterFireIsHarmlessNoOp) {
  EventQueue q;
  EventId fired = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.pop().handler();
  // Cancelling the already-fired event must not disturb live accounting.
  EXPECT_FALSE(q.cancel(fired));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.pop().handler();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, NextTimeSkipsCancelledHead) {
  EventQueue q;
  EventId early = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator s;
  Time seen = -1.0;
  s.schedule_at(2.5, [&] { seen = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(static_cast<Time>(i), [&] { ++count; });
  }
  s.run_until(5.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  s.run_until(20.0);
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(s.now(), 20.0);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_in(1.0 * kUsec, recurse);
  };
  s.schedule_in(0.0, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.events_processed(), 100u);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(static_cast<Time>(i), [&] {
      if (++count == 3) s.stop();
    });
  }
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending_events(), 7u);
}

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 3.0};
  int counts[2] = {0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng b = a.fork();
  // The fork must not mirror the parent.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(gbps(100), 12.5e9);
  EXPECT_DOUBLE_EQ(serialization_delay(12500, gbps(100)), 1.0 * kUsec);
}

}  // namespace
}  // namespace aeq::sim
