// Tests for the execution profiler (src/obs/prof/, DESIGN.md §14):
// Collector region-stack semantics, deterministic tree sampling, the
// observe-only contract (profiled runs are result- and schedule-digest-
// identical to unprofiled runs on both scheduler backends at 1/2/4
// shards), and the --prof report outputs (JSON schema, Chrome tracks,
// text summary).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/prof/profiler.h"
#include "obs/prof/report.h"
#include "rpc/slo.h"
#include "runner/experiment.h"
#include "sim/digest.h"
#include "sim/units.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace {

using namespace aeq;
using obs::prof::Collector;
using obs::prof::ProfRegion;
using obs::prof::Region;

// --- Collector semantics ---------------------------------------------------

// Period 1 = exact mode: every tree is timed, counts are raw, scale is 1.
TEST(ProfCollectorTest, NestedRegionsAttributeSelfAndTotal) {
  Collector collector(1);
  collector.enter(Region::kDispatch);
  collector.enter(Region::kQueueWfq);
  collector.exit(Region::kQueueWfq);
  collector.exit(Region::kDispatch);

  const auto& dispatch = collector.stats(Region::kDispatch);
  const auto& wfq = collector.stats(Region::kQueueWfq);
  EXPECT_EQ(dispatch.count, 1u);
  EXPECT_EQ(wfq.count, 1u);
  // The child's inclusive time is subtracted from the parent's self time.
  EXPECT_LE(dispatch.self_cycles, dispatch.total_cycles);
  EXPECT_GE(dispatch.total_cycles, wfq.total_cycles);
  EXPECT_EQ(wfq.self_cycles, wfq.total_cycles);  // leaf: no children
  EXPECT_EQ(collector.depth(), 0u);
  EXPECT_DOUBLE_EQ(collector.sample_scale(), 1.0);
}

TEST(ProfCollectorTest, HistogramCountsMatchRegionCount) {
  Collector collector(1);
  for (int i = 0; i < 10; ++i) {
    collector.enter(Region::kPortTx);
    collector.exit(Region::kPortTx);
  }
  const auto& stats = collector.stats(Region::kPortTx);
  EXPECT_EQ(stats.count, 10u);
  std::uint64_t hist_sum = 0;
  for (std::size_t b = 0; b < obs::prof::kHistBuckets; ++b) {
    hist_sum += stats.hist[b];
  }
  EXPECT_EQ(hist_sum, 10u);
}

// The countdown starts at 1, so the first tree is always sampled; after
// that every period-th tree is. Deterministic — no clocks involved.
TEST(ProfCollectorTest, SampleRootCountdownIsDeterministic) {
  Collector collector(2);
  std::vector<bool> sampled;
  for (int i = 0; i < 5; ++i) sampled.push_back(collector.sample_root());
  EXPECT_EQ(sampled, (std::vector<bool>{true, false, true, false, true}));
  EXPECT_EQ(collector.roots_entered(), 5u);
  EXPECT_EQ(collector.roots_sampled(), 3u);
  EXPECT_DOUBLE_EQ(collector.sample_scale(), 5.0 / 3.0);
}

TEST(ProfCollectorTest, ResetClearsStatsAndCounters) {
  Collector collector(4);
  collector.sample_root();
  collector.enter(Region::kAudit);
  collector.exit(Region::kAudit);
  collector.reset();
  EXPECT_EQ(collector.roots_entered(), 0u);
  EXPECT_EQ(collector.roots_sampled(), 0u);
  EXPECT_EQ(collector.stats(Region::kAudit).count, 0u);
  // After reset the next tree is sampled again (countdown restarts at 1).
  EXPECT_TRUE(collector.sample_root());
}

// --- ProfRegion + thread-local install -------------------------------------

TEST(ProfRegionTest, NoOpWithoutInstalledCollector) {
  ASSERT_EQ(obs::prof::current(), nullptr);
  {
    ProfRegion root(Region::kDispatch);
    ProfRegion child(Region::kQueueFifo);
  }
  // Nothing to observe — the point is that this neither crashed nor
  // required a collector.
  EXPECT_EQ(obs::prof::current(), nullptr);
}

TEST(ProfRegionTest, TreeSamplingTimesEveryPeriodthTree) {
  Collector collector(2);
  obs::prof::install(&collector);
  for (int i = 0; i < 4; ++i) {
    ProfRegion root(Region::kDispatch);
    ProfRegion child(Region::kQueueFifo);
  }
  obs::prof::install(nullptr);

  // Trees 0 and 2 are timed (countdown starts at 1, period 2); trees 1
  // and 3 are skipped entirely — including their nested regions.
  EXPECT_EQ(collector.roots_entered(), 4u);
  EXPECT_EQ(collector.roots_sampled(), 2u);
  EXPECT_EQ(collector.stats(Region::kDispatch).count, 2u);
  EXPECT_EQ(collector.stats(Region::kQueueFifo).count, 2u);
  EXPECT_DOUBLE_EQ(collector.sample_scale(), 2.0);
}

TEST(ProfRegionTest, InstallResetsTreeStateAndCurrentReflectsCollector) {
  Collector collector(1);
  obs::prof::install(&collector);
  EXPECT_EQ(obs::prof::current(), &collector);
  {
    ProfRegion root(Region::kAudit);
  }
  obs::prof::install(nullptr);
  EXPECT_EQ(obs::prof::current(), nullptr);
  EXPECT_EQ(collector.stats(Region::kAudit).count, 1u);
}

TEST(ProfCollectorDeathTest, ExitWithoutEnterAborts) {
  Collector collector(1);
  EXPECT_DEATH(collector.exit(Region::kDispatch),
               "profiler region stack underflow");
}

TEST(ProfCollectorDeathTest, MismatchedExitAborts) {
  Collector collector(1);
  collector.enter(Region::kDispatch);
  EXPECT_DEATH(collector.exit(Region::kQueueWfq),
               "mismatched profiler region exit");
}

TEST(ProfCollectorDeathTest, StackOverflowAborts) {
  Collector collector(1);
  EXPECT_DEATH(
      {
        for (std::size_t i = 0; i <= obs::prof::kMaxDepth; ++i) {
          collector.enter(Region::kDispatch);
        }
      },
      "profiler region stack overflow");
}

// --- attributed_self_cycles -------------------------------------------------

TEST(ProfCollectorTest, AttributedSelfCyclesSumsRegions) {
  Collector collector(1);
  collector.enter(Region::kDispatch);
  collector.enter(Region::kQueueWfq);
  collector.exit(Region::kQueueWfq);
  collector.exit(Region::kDispatch);
  const obs::prof::Cycles expected =
      collector.stats(Region::kDispatch).self_cycles +
      collector.stats(Region::kQueueWfq).self_cycles;
  EXPECT_EQ(obs::prof::attributed_self_cycles(collector), expected);
}

// --- observe-only contract (experiment level) -------------------------------

struct RunResult {
  std::uint64_t completed = 0;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
  std::vector<double> p999;
};

RunResult run_workload(sim::SchedulerBackend backend, std::size_t shards,
                       const std::string& prof_path) {
  runner::ExperimentConfig config;
  config.scheduler_backend = backend;
  config.num_hosts = 8;
  config.num_qos = 3;
  config.enable_aequitas = true;
  config.slo = rpc::SloConfig::make(
      {2.0 * sim::kUsec, 10.0 * sim::kUsec, 0.0}, 99.0);
  config.shards = shards;
  // Audit ticks are per-executive events (see tests/digest_test.cc), so
  // pin auditing off for cross-shard-count digest comparisons.
  config.audit = false;
  config.schedule_digest = sim::kDigestBuildEnabled;
  config.seed = 42;

  runner::Experiment experiment(config);
  if (!prof_path.empty()) experiment.enable_profiling(prof_path);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(16 * sim::kKiB));
  for (std::size_t h = 0; h < config.num_hosts; ++h) {
    workload::GeneratorConfig gen;
    gen.classes = {
        {rpc::Priority::kPC, 0.5 * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kNC, 0.4 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(static_cast<net::HostId>(h), gen);
  }
  // Silence the end-of-run [prof] summary: it goes to stderr by contract,
  // so the test only needs to not care about it.
  experiment.run(0.1 * sim::kMsec, 0.5 * sim::kMsec, 0.2 * sim::kMsec);

  RunResult result;
  result.completed = experiment.metrics().total_completed();
  result.events = experiment.events_processed();
  result.digest = experiment.schedule_digest().canonical();
  for (net::QoSLevel qos = 0; qos < 3; ++qos) {
    result.p999.push_back(experiment.metrics().rnl_by_run_qos(qos).p999());
  }
  return result;
}

void remove_prof_outputs(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".trace.json").c_str());
}

// The tentpole guarantee: enabling --prof changes no simulation result and
// no schedule, on either scheduler backend, serial or sharded.
TEST(ProfIdentityTest, ProfiledRunIsResultAndDigestIdentical) {
  for (const auto backend : {sim::SchedulerBackend::kHeap,
                             sim::SchedulerBackend::kCalendar}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
      if (shards > 1 && backend == sim::SchedulerBackend::kHeap) continue;
      SCOPED_TRACE(std::string(sim::backend_name(backend)) + " x" +
                   std::to_string(shards));
      const std::string prof_path = ::testing::TempDir() + "prof_identity_" +
                                    sim::backend_name(backend) + "_" +
                                    std::to_string(shards) + ".json";
      const RunResult bare = run_workload(backend, shards, "");
      const RunResult profiled = run_workload(backend, shards, prof_path);
      ASSERT_GT(bare.completed, 0u);
      EXPECT_EQ(bare.completed, profiled.completed);
      EXPECT_EQ(bare.events, profiled.events);
      if (sim::kDigestBuildEnabled) {
        EXPECT_EQ(bare.digest, profiled.digest);
      }
      for (std::size_t qos = 0; qos < bare.p999.size(); ++qos) {
        EXPECT_EQ(bare.p999[qos], profiled.p999[qos]);
      }
      remove_prof_outputs(prof_path);
    }
  }
}

// The digest must also agree across shard counts (the conservative-PDES
// contract) while profiled — sampling is per-thread, so this would catch a
// collector perturbing the barrier protocol.
TEST(ProfIdentityTest, ProfiledDigestAgreesAcrossShardCounts) {
  if (!sim::kDigestBuildEnabled) {
    GTEST_SKIP() << "built with AEQ_SCHED_DIGEST=OFF";
  }
  const std::string base = ::testing::TempDir() + "prof_shards_";
  const RunResult serial =
      run_workload(sim::SchedulerBackend::kCalendar, 1, base + "1.json");
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    const RunResult sharded = run_workload(
        sim::SchedulerBackend::kCalendar, shards,
        base + std::to_string(shards) + ".json");
    EXPECT_EQ(sharded.digest, serial.digest) << shards << " shards";
    EXPECT_EQ(sharded.events, serial.events) << shards << " shards";
    remove_prof_outputs(base + std::to_string(shards) + ".json");
  }
  remove_prof_outputs(base + "1.json");
}

// --- report outputs ---------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ProfReportTest, SerialJsonReportHasSchemaAndSerialThread) {
  const std::string path = ::testing::TempDir() + "prof_serial_report.json";
  run_workload(sim::SchedulerBackend::kCalendar, 1, path);
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"schema\":\"aeq-prof-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"serial\""), std::string::npos);
  EXPECT_NE(json.find("\"sample_period\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"engine/dispatch\""), std::string::npos);
  EXPECT_EQ(json.find("\"executive\""), std::string::npos);
  // The Chrome flame tracks ride along and use the merged framing.
  const std::string trace = slurp(path + ".trace.json");
  EXPECT_EQ(trace.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_NE(trace.find("prof:serial"), std::string::npos);
  remove_prof_outputs(path);
}

TEST(ProfReportTest, ShardedJsonReportHasExecutiveAndShardThreads) {
  const std::string path = ::testing::TempDir() + "prof_sharded_report.json";
  run_workload(sim::SchedulerBackend::kCalendar, 4, path);
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"num_shards\":4"), std::string::npos);
  for (int k = 0; k < 4; ++k) {
    EXPECT_NE(json.find("\"label\":\"shard" + std::to_string(k) + "\""),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"label\":\"coordinator\""), std::string::npos);
  EXPECT_NE(json.find("\"executive\":{\"windows\":"), std::string::npos);
  EXPECT_NE(json.find("\"barrier_stall_share\":"), std::string::npos);
  EXPECT_NE(json.find("\"load_imbalance\":"), std::string::npos);
  EXPECT_NE(json.find("\"mailbox_depth_hwm\":"), std::string::npos);
  remove_prof_outputs(path);
}

TEST(ProfReportTest, TextSummaryScalesCallsAndNamesSampling) {
  // Build a report by hand so the summary's numbers are predictable.
  obs::prof::Report report;
  report.events_processed = 1000;
  report.elapsed_seconds = 1.0;
  report.cycles_per_second = 1e9;
  obs::prof::ThreadProfile thread;
  thread.label = "serial";
  thread.events = 1000;
  thread.busy_cycles = 1000000;
  // Period-2 collector: 4 trees entered, 2 timed — scaled calls double.
  thread.collector = Collector(2);
  obs::prof::install(&thread.collector);
  for (int i = 0; i < 4; ++i) {
    ProfRegion root(Region::kDispatch);
  }
  obs::prof::install(nullptr);
  report.denominator_cycles = thread.busy_cycles;
  report.threads.push_back(std::move(thread));

  std::ostringstream out;
  obs::prof::write_text_summary(report, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("1-in-2 tree sampling"), std::string::npos);
  // 2 sampled dispatch calls at scale 2 report as 4.
  EXPECT_NE(text.find("engine/dispatch"), std::string::npos);
  EXPECT_NE(text.find("           4 "), std::string::npos);
}

}  // namespace
