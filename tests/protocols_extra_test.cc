// Deeper behavioural tests for the baseline protocol stacks: ordering
// properties, reentrancy of the deadline fabric, recovery under drops, and
// level isolation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runner/protocol_experiment.h"

namespace aeq::protocols {
namespace {

using runner::BaselineProtocol;
using runner::ProtocolExperiment;
using runner::ProtocolExperimentConfig;

ProtocolExperimentConfig base_config(BaselineProtocol protocol,
                                     std::size_t hosts = 3) {
  ProtocolExperimentConfig config;
  config.protocol = protocol;
  config.num_hosts = hosts;
  config.num_qos = 3;
  config.slo = rpc::SloConfig::make(
      {15 * sim::kUsec, 25 * sim::kUsec, 0.0}, 99.9);
  return config;
}

TEST(QjumpExtraTest, TopLevelIsolatedFromScavengerBlast) {
  auto config = base_config(BaselineProtocol::kQjump);
  config.qjump_level_rate_fraction = {0.10, 0.30, 0.0};
  ProtocolExperiment experiment(config);
  // Host 1 dumps a huge BE message; host 0's small PC message must still
  // finish promptly (SPQ + its own rate budget).
  experiment.stack(1).issue(2, rpc::Priority::kBE, 16 * sim::kMiB);
  sim::Time pc_rnl = 0.0;
  experiment.stack(0).set_completion_listener(
      [&](const rpc::RpcRecord& r) {
        if (r.priority == rpc::Priority::kPC) pc_rnl = r.rnl;
      });
  experiment.simulator().schedule_in(100 * sim::kUsec, [&] {
    experiment.stack(0).issue(2, rpc::Priority::kPC, 8 * sim::kKiB);
  });
  experiment.simulator().run_until(10 * sim::kMsec);
  EXPECT_GT(pc_rnl, 0.0);
  // 8KB at a 10Gbps cap is ~6.6us serialization + RTT; allow queueing slack.
  EXPECT_LT(pc_rnl, 60 * sim::kUsec);
}

TEST(HomaExtraTest, ShorterMessagesFinishFirstUnderSharedBottleneck) {
  ProtocolExperiment experiment(base_config(BaselineProtocol::kHoma, 5));
  std::vector<std::pair<std::uint64_t, sim::Time>> completions;
  for (net::HostId src = 0; src < 4; ++src) {
    experiment.stack(src).set_completion_listener(
        [&](const rpc::RpcRecord& r) {
          completions.emplace_back(r.bytes, r.completed);
        });
  }
  // Four concurrent messages of very different sizes into host 4.
  const std::uint64_t sizes[] = {2 * sim::kMiB, 64 * sim::kKiB,
                                 512 * sim::kKiB, 8 * sim::kKiB};
  for (net::HostId src = 0; src < 4; ++src) {
    experiment.stack(src).issue(4, rpc::Priority::kNC, sizes[src]);
  }
  experiment.simulator().run_until(50 * sim::kMsec);
  ASSERT_EQ(completions.size(), 4u);
  // Completion order should be (8KB, 64KB, 512KB, 2MB) — SRPT via grants.
  for (std::size_t i = 1; i < completions.size(); ++i) {
    EXPECT_LT(completions[i - 1].first, completions[i].first)
        << "completion order not SRPT";
  }
}

TEST(PfabricExtraTest, ManySendersAllComplete) {
  ProtocolExperiment experiment(base_config(BaselineProtocol::kPfabric, 9));
  int done = 0;
  for (net::HostId src = 0; src < 8; ++src) {
    experiment.stack(src).set_completion_listener(
        [&](const rpc::RpcRecord&) { ++done; });
    for (int m = 0; m < 5; ++m) {
      experiment.stack(src).issue(
          8, static_cast<rpc::Priority>(m % 3),
          (static_cast<std::uint64_t>(m) + 1) * 32 * sim::kKiB);
    }
  }
  experiment.simulator().run_until(100 * sim::kMsec);
  EXPECT_EQ(done, 40);
}

TEST(DeadlineFabricExtraTest, MassTerminationIsReentrancySafe) {
  sim::Simulator s;
  DeadlineFabric fabric(s, DeadlineMode::kPdq, 100.0, 10 * sim::kUsec);
  int killed = 0;
  // All three flows are individually hopeless; the termination cascade
  // mutates the flow map while the allocator iterates.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    fabric.register_flow(id, 0, /*deadline=*/1e-6, /*remaining=*/1000000,
                         [&killed, &fabric, id](double, bool t) {
                           if (t) {
                             ++killed;
                             fabric.remove_flow(id);  // no-op: fabric forgot
                           }
                         });
  }
  s.run_until(50 * sim::kUsec);
  EXPECT_EQ(killed, 3);
  EXPECT_EQ(fabric.flows_terminated(), 3u);
}

TEST(DeadlineFabricExtraTest, UpdateRemainingShrinksDemand) {
  sim::Simulator s;
  DeadlineFabric fabric(s, DeadlineMode::kD3, 1000.0, 10 * sim::kUsec);
  double rate1 = 0.0, rate2 = 0.0;
  fabric.register_flow(1, 0, /*deadline=*/1.0, /*remaining=*/400,
                       [&](double r, bool) { rate1 = r; });
  fabric.register_flow(2, 0, /*deadline=*/1.0, /*remaining=*/400,
                       [&](double r, bool) { rate2 = r; });
  s.run_until(15 * sim::kUsec);
  // Symmetric demands: equal grants + equal base share.
  EXPECT_NEAR(rate1, rate2, 1e-9);
  const double initial = rate1;
  fabric.update_remaining(1, 40);  // flow 1 is 90% done
  s.run_until(40 * sim::kUsec);
  // Flow 1's demand-capped share shrinks; flow 2 absorbs the difference.
  EXPECT_LT(rate1, initial);
  EXPECT_GT(rate2, rate1);
}

TEST(QjumpExtraTest, RecoversFromDropsWithTinyBuffers) {
  auto config = base_config(BaselineProtocol::kQjump);
  ProtocolExperiment experiment(config);
  // Shrink the victim downlink's effective buffer by blasting two
  // unthrottled BE streams; reliability must still complete everything.
  int done = 0;
  for (net::HostId src : {0, 1}) {
    experiment.stack(src).set_completion_listener(
        [&](const rpc::RpcRecord&) { ++done; });
    experiment.stack(src).issue(2, rpc::Priority::kBE, 4 * sim::kMiB);
  }
  experiment.simulator().run_until(100 * sim::kMsec);
  EXPECT_EQ(done, 2);
}

TEST(HomaExtraTest, UnscheduledOnlyMessageNeedsNoGrants) {
  auto config = base_config(BaselineProtocol::kHoma);
  config.homa.rtt_bytes = 64 * 1024;
  ProtocolExperiment experiment(config);
  sim::Time rnl = 0.0;
  experiment.stack(0).set_completion_listener(
      [&](const rpc::RpcRecord& r) { rnl = r.rnl; });
  experiment.stack(0).issue(1, rpc::Priority::kPC, 32 * sim::kKiB);
  experiment.simulator().run();
  // Fits in the unscheduled window: one-way blast + per-packet ACKs.
  EXPECT_GT(rnl, 2 * sim::kUsec);
  EXPECT_LT(rnl, 20 * sim::kUsec);
}

}  // namespace
}  // namespace aeq::protocols
