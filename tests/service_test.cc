// Tests for the two-sided RPC service layer (Appendix A): READ/WRITE
// operations, request/response correlation via app tags, receiver-side RPC
// delivery detection, and operation latency composition.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rpc/service.h"
#include "runner/experiment.h"

namespace aeq::rpc {
namespace {

struct ServiceHarness {
  runner::Experiment experiment;
  std::vector<std::unique_ptr<RpcServiceNode>> nodes;

  static runner::ExperimentConfig config(bool aequitas = false) {
    runner::ExperimentConfig c;
    c.num_hosts = 3;
    c.num_qos = 3;
    c.enable_aequitas = aequitas;
    c.slo = SloConfig::make({15 * sim::kUsec, 25 * sim::kUsec, 0.0}, 99.9);
    return c;
  }

  explicit ServiceHarness(bool aequitas = false)
      : experiment(config(aequitas)) {
    for (net::HostId h = 0; h < 3; ++h) {
      nodes.push_back(std::make_unique<RpcServiceNode>(
          experiment.simulator(), experiment.stack(h),
          experiment.host_stack(h)));
    }
  }
};

TEST(RpcDeliveryTest, ReceiverSeesEachMessageOnce) {
  ServiceHarness h;
  std::vector<transport::DeliveredRpc> seen;
  h.experiment.host_stack(1).set_rpc_delivery_handler(
      [&](const transport::DeliveredRpc& d) { seen.push_back(d); });
  for (int i = 0; i < 5; ++i) {
    h.experiment.stack(0).issue(1, Priority::kPC, 32 * sim::kKiB, 0.0,
                                /*app_tag=*/100 + i);
  }
  h.experiment.simulator().run();
  ASSERT_EQ(seen.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(seen[i].app_tag, 100u + i);  // FIFO stream order
    EXPECT_EQ(seen[i].bytes, 32 * sim::kKiB);
    EXPECT_EQ(seen[i].src, 0);
  }
}

TEST(ServiceTest, TagRoundTrip) {
  const std::uint64_t tag = RpcServiceNode::encode_tag(
      2, Priority::kNC, (1ull << 36) - 1, 0xABCDEF);
  EXPECT_EQ(tag >> 62, 2u);
  EXPECT_EQ((tag >> 60) & 0x3, 1u);  // kNC
  EXPECT_EQ((tag >> 24) & ((1ull << 36) - 1), (1ull << 36) - 1);
  EXPECT_EQ(tag & 0xFFFFFF, 0xABCDEFu);
}

TEST(ServiceTest, WriteOpCompletesWithResponse) {
  ServiceHarness h;
  RpcServiceNode::OpCompletion done{};
  h.nodes[0]->set_op_listener(
      [&](const RpcServiceNode::OpCompletion& c) { done = c; });
  h.nodes[0]->write(2, 64 * sim::kKiB, Priority::kPC);
  h.experiment.simulator().run();
  EXPECT_EQ(h.nodes[0]->completed_ops(), 1u);
  EXPECT_EQ(h.nodes[2]->served_requests(), 1u);
  EXPECT_EQ(done.op, RpcOp::kWrite);
  EXPECT_EQ(done.peer, 2);
  EXPECT_EQ(done.payload_bytes, 64 * sim::kKiB);
  // Operation latency covers request (payload) + response (control).
  EXPECT_GT(done.latency(), 5 * sim::kUsec);
  EXPECT_LT(done.latency(), 60 * sim::kUsec);
}

TEST(ServiceTest, ReadOpPayloadRidesTheResponse) {
  ServiceHarness h;
  RpcServiceNode::OpCompletion done{};
  h.nodes[1]->set_op_listener(
      [&](const RpcServiceNode::OpCompletion& c) { done = c; });
  h.nodes[1]->read(0, 256 * sim::kKiB, Priority::kNC);
  h.experiment.simulator().run();
  EXPECT_EQ(h.nodes[1]->completed_ops(), 1u);
  EXPECT_EQ(h.nodes[0]->served_requests(), 1u);
  EXPECT_EQ(done.op, RpcOp::kRead);
  // 256KB at 100G ~ 21us serialization; the op must take at least that.
  EXPECT_GT(done.latency(), 21 * sim::kUsec);
}

TEST(ServiceTest, ManyConcurrentOpsAllComplete) {
  ServiceHarness h;
  int completed = 0;
  for (net::HostId client : {0, 1}) {
    h.nodes[client]->set_op_listener(
        [&](const RpcServiceNode::OpCompletion&) { ++completed; });
    for (int i = 0; i < 50; ++i) {
      if (i % 2 == 0) {
        h.nodes[client]->read(2, 32 * sim::kKiB, Priority::kPC);
      } else {
        h.nodes[client]->write(2, 32 * sim::kKiB, Priority::kBE);
      }
    }
  }
  h.experiment.simulator().run_until(0.5);
  EXPECT_EQ(completed, 100);
  EXPECT_EQ(h.nodes[2]->served_requests(), 100u);
}

TEST(ServiceTest, WorksUnderAequitasDowngrades) {
  ServiceHarness h(/*aequitas=*/true);
  // Crush the admit probability so requests get downgraded; operations must
  // still complete (downgrade is not drop).
  for (int i = 0; i < 300; ++i) {
    h.experiment.admission(0).on_completion(0.0, 0, 2, net::kQoSHigh,
                                            net::kQoSHigh, 1.0, 8);
  }
  int completed = 0;
  h.nodes[0]->set_op_listener(
      [&](const RpcServiceNode::OpCompletion&) { ++completed; });
  for (int i = 0; i < 20; ++i) {
    h.nodes[0]->write(2, 32 * sim::kKiB, Priority::kPC);
  }
  h.experiment.simulator().run_until(0.5);
  EXPECT_EQ(completed, 20);
}

TEST(ServiceTest, OperationsInterleaveAcrossPriorities) {
  ServiceHarness h;
  std::vector<RpcServiceNode::OpCompletion> done;
  h.nodes[0]->set_op_listener(
      [&](const RpcServiceNode::OpCompletion& c) { done.push_back(c); });
  h.nodes[0]->read(1, 8 * sim::kKiB, Priority::kPC);
  h.nodes[0]->write(1, 1 * sim::kMiB, Priority::kBE);
  h.nodes[0]->read(2, 8 * sim::kKiB, Priority::kNC);
  h.experiment.simulator().run_until(0.5);
  ASSERT_EQ(done.size(), 3u);
  // Every op returns its own metadata (correlation held up).
  int reads = 0, writes = 0;
  for (const auto& c : done) {
    (c.op == RpcOp::kRead ? reads : writes) += 1;
  }
  EXPECT_EQ(reads, 2);
  EXPECT_EQ(writes, 1);
}

}  // namespace
}  // namespace aeq::rpc
